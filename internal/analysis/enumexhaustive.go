package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerEnumExhaustive enforces exhaustive switches over the module's
// iota-declared enums (trace.Kind, arch.CohState, isa.Op, faultinject.Site,
// …). A switch whose tag has an iota-enum type must either cover every
// declared constant of that type or carry an explicit default clause;
// otherwise adding an enum member (a new coherence state, a new fault
// site) silently falls through instead of failing loudly. Cardinality
// sentinels (numSites, maxOps, …Count) are not treated as members.
var AnalyzerEnumExhaustive = &Analyzer{
	Name: "enumexhaustive",
	Doc:  "require switches over iota-declared enum types to cover every constant or declare an explicit default",
	Run:  runEnumExhaustive,
}

// enumInfo is the registry entry for one iota-declared named type.
type enumInfo struct {
	obj     *types.TypeName
	members []enumMember // declaration order, deduped by constant value
}

// enumMember is one declared constant of an enum type.
type enumMember struct {
	name string
	val  string // constant.Value.ExactString(), the coverage key
}

func runEnumExhaustive(p *Pass) {
	enums := p.runner.enumRegistry(p.Mod)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := p.Pkg.Info.TypeOf(sw.Tag).(*types.Named)
			if !ok {
				return true
			}
			info := enums[named.Obj()]
			if info == nil {
				return true
			}
			covered := make(map[string]bool)
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // explicit default: exhaustiveness is the author's problem
				}
				for _, e := range cc.List {
					tv, ok := p.Pkg.Info.Types[e]
					if !ok || tv.Value == nil {
						return true // non-constant case: cannot reason about coverage
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			var missing []string
			for _, m := range info.members {
				if !covered[m.val] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				p.Reportf(sw.Pos(), "switch over %s does not cover %s and has no default: add the missing cases or an explicit default",
					enumTypeName(p, named.Obj()), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// enumTypeName renders the enum type for messages, qualified with its
// package name when the switch lives elsewhere.
func enumTypeName(p *Pass, tn *types.TypeName) string {
	if tn.Pkg() == p.Pkg.Types {
		return tn.Name()
	}
	return tn.Pkg().Name() + "." + tn.Name()
}

// enumRegistry builds, once per module, the map of iota-declared enum
// types to their member constants. A named type qualifies when some const
// block in its defining package declares constants of the type using
// iota; its members are then all package-level constants of the type —
// from any const block — minus cardinality sentinels, deduped by value
// (aliases count as their canonical member).
func (r *Runner) enumRegistry(mod *Module) map[*types.TypeName]*enumInfo {
	r.enumOnce.Do(func() {
		iotaObj := types.Universe.Lookup("iota")
		enums := make(map[*types.TypeName]*enumInfo)

		constDecls := func(pkg *Package, visit func(*ast.GenDecl)) {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
						visit(gd)
					}
				}
			}
		}

		// Pass 1: find named types that some iota const block declares.
		for _, pkg := range mod.Pkgs {
			constDecls(pkg, func(gd *ast.GenDecl) {
				usesIota := false
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, v := range vs.Values {
						ast.Inspect(v, func(n ast.Node) bool {
							if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == iotaObj {
								usesIota = true
							}
							return !usesIota
						})
					}
				}
				if !usesIota {
					return
				}
				for _, spec := range gd.Specs {
					for _, name := range spec.(*ast.ValueSpec).Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						if named, ok := c.Type().(*types.Named); ok && named.Obj().Pkg() == pkg.Types {
							tn := named.Obj()
							if enums[tn] == nil {
								enums[tn] = &enumInfo{obj: tn}
							}
						}
					}
				}
			})
		}

		// Pass 2: collect every package-level constant of those types.
		for _, pkg := range mod.Pkgs {
			constDecls(pkg, func(gd *ast.GenDecl) {
				for _, spec := range gd.Specs {
					for _, name := range spec.(*ast.ValueSpec).Names {
						if name.Name == "_" || enumSentinelName(name.Name) {
							continue
						}
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						named, ok := c.Type().(*types.Named)
						if !ok || named.Obj().Pkg() != pkg.Types {
							continue
						}
						info := enums[named.Obj()]
						if info == nil {
							continue
						}
						val := c.Val().ExactString()
						dup := false
						for _, m := range info.members {
							if m.val == val {
								dup = true
								break
							}
						}
						if !dup {
							info.members = append(info.members, enumMember{name: name.Name, val: val})
						}
					}
				}
			})
		}

		// Drop degenerate "enums" with a single member: switching over
		// them exhaustively is meaningless.
		tns := make([]*types.TypeName, 0, len(enums))
		for tn := range enums {
			tns = append(tns, tn)
		}
		sort.Slice(tns, func(i, j int) bool { return tns[i].Pos() < tns[j].Pos() })
		for _, tn := range tns {
			if len(enums[tn].members) < 2 {
				delete(enums, tn)
			}
		}
		r.enums = enums
	})
	return r.enums
}

// enumSentinelName reports whether a constant name denotes a cardinality
// sentinel (numSites, MaxOps, stateCount) rather than an enum member.
func enumSentinelName(name string) bool {
	for _, prefix := range []string{"num", "Num", "max", "Max"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return strings.HasSuffix(name, "Count")
}
