package invisispec

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/testprog"
)

func runProg(t *testing.T, pol cpu.Policy, prog string) (*cpu.Machine, *memsys.Hierarchy) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := testprog.SmallConfig()
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	p := testprog.WrongPathExecuted()
	if prog == "inflight" {
		p = testprog.WrongPathInflight()
	}
	m := cpu.New(cfg, p, h, pol)
	m.Run(0)
	m.DrainMemory()
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	return m, h
}

func TestInvisibleWrongPathLeavesNoTrace(t *testing.T) {
	for _, mode := range []Mode{Initial, Revised} {
		pol := New(mode)
		m, h := runProg(t, pol, "executed")
		if m.Stats.Squashes == 0 {
			t.Fatal("no squash")
		}
		// The transient load completed invisibly: the line must not
		// have been promoted into the L1.
		if _, hit := h.L1(0).Probe(testprog.AddrWrong.Line()); hit {
			t.Fatalf("%v: wrong-path line reached the L1", mode)
		}
		// And both victims stay resident (nothing was evicted).
		for _, a := range []uint64{uint64(testprog.AddrVictim1), uint64(testprog.AddrVictim2)} {
			if _, hit := h.L1(0).Probe(testprog.AddrVictim1.Line()); !hit {
				t.Fatalf("%v: victim %#x evicted by an invisible load", mode, a)
			}
		}
	}
}

func TestCorrectPathSpecLoadUpdatesCacheAtCommit(t *testing.T) {
	pol := New(Revised)
	m, h := runProg(t, pol, "executed")
	// The correct-path load (issued speculatively under the resolved-late
	// branch? it issues after the squash so it is non-speculative; use
	// the flag load instead: it was never speculative either). Check the
	// mechanism directly via stats: updates happened for invisible loads
	// that became visible.
	if pol.Stats.Updates == 0 {
		t.Skip("no speculative correct-path loads in this scenario")
	}
	_ = m
	_ = h
}

func TestUpdateTrafficCounted(t *testing.T) {
	// A loop with a predictable branch and loads inside: the loads issue
	// speculatively (branch unresolved) but commit, forcing updates.
	pol := New(Revised)
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	h := memsys.New(testprog.SmallConfig())
	prog := testprog.SpecPointerChase(50, 0x10000)
	m := cpu.New(cfg, prog, h, pol)
	m.Run(0)
	if pol.Stats.Updates == 0 {
		t.Fatalf("expected update accesses: %+v", pol.Stats)
	}
	if h.Traffic.Update == 0 || h.Traffic.Invisible == 0 {
		t.Fatalf("traffic: %+v", h.Traffic)
	}
	_ = m
}

func TestInitialSlowerThanRevisedOnDependentChain(t *testing.T) {
	run := func(pol cpu.Policy) uint64 {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = 10_000_000
		h := memsys.New(memsys.DefaultConfig(1))
		m := cpu.New(cfg, testprog.SpecPointerChase(200, 0x20000), h, pol)
		st := m.Run(0)
		return st.Cycles
	}
	base := run(cpu.NonSecure{})
	revised := run(New(Revised))
	initial := run(New(Initial))
	if revised <= base {
		t.Fatalf("revised (%d) should be slower than non-secure (%d)", revised, base)
	}
	if initial <= revised {
		t.Fatalf("initial (%d) should be slower than revised (%d): value propagation is deferred", initial, revised)
	}
}

func TestSquashCostsNothingBeyondRedirect(t *testing.T) {
	pol := New(Revised)
	m, _ := runProg(t, pol, "executed")
	if m.Stats.CleanupOpCycles != 0 || m.Stats.InflightWaitCycles != 0 {
		t.Fatalf("InvisiSpec squashes must not charge cleanup: %+v", m.Stats)
	}
}

func TestModeNames(t *testing.T) {
	if New(Initial).Name() != "invisispec-initial" || New(Revised).Name() != "invisispec-revised" {
		t.Fatal("names wrong")
	}
}
