package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"repro/sim"
)

// Variant is one named config override in a grid (the Table 1 ablations,
// a CEASER remap rate sweep, ...). Mod mutates the job's base config; the
// job's cache identity comes from the resulting resolved config, so two
// variants that happen to produce the same effective config share cache
// slots and two different ones never do. An empty-name Variant with a nil
// Mod is the base configuration.
type Variant struct {
	Name string
	Mod  func(*sim.Config)
}

// Grid is the declarative campaign: every combination of workload ×
// policy × variant × seed becomes one job.
type Grid struct {
	Name         string
	Workloads    []string
	Policies     []sim.Policy
	Seeds        []uint64
	Variants     []Variant
	Instructions uint64
}

// Jobs expands the grid in deterministic (workload, policy, variant,
// seed) order.
func (g Grid) Jobs() []Job {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	variants := g.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	var jobs []Job
	for _, wl := range g.Workloads {
		for _, p := range g.Policies {
			for _, v := range variants {
				for _, seed := range seeds {
					cfg := sim.Config{Policy: p, Instructions: g.Instructions, Seed: seed}
					if v.Mod != nil {
						v.Mod(&cfg)
					}
					jobs = append(jobs, Job{Workload: wl, Variant: v.Name, Config: cfg})
				}
			}
		}
	}
	return jobs
}

// GridNames lists the predefined grids in presentation order.
func GridNames() []string { return []string{"all", "paper", "headline", "quick"} }

// GridByName returns one of the predefined grids:
//
//   - all: every workload × every policy — the full evaluation surface.
//   - paper: every workload × the paper's Table 6 policies (non-secure
//     baseline, CleanupSpec, both InvisiSpec models).
//   - headline: every workload × {nonsecure, cleanupspec} — Figure 12.
//   - quick: four representative workloads × {nonsecure, cleanupspec} — a
//     smoke-sized grid for trying the tooling.
//
// instructions sizes the measurement window (0 → the sim default) and
// seeds is the seed sweep (nil → seed 1).
func GridByName(name string, instructions uint64, seeds []uint64) (Grid, error) {
	g := Grid{Name: name, Workloads: sim.Workloads(), Seeds: seeds, Instructions: instructions}
	switch name {
	case "all":
		g.Policies = sim.Policies()
	case "paper":
		g.Policies = []sim.Policy{sim.NonSecure, sim.CleanupSpec, sim.InvisiSpecInitial, sim.InvisiSpecRevised}
	case "headline":
		g.Policies = []sim.Policy{sim.NonSecure, sim.CleanupSpec}
	case "quick":
		g.Workloads = []string{"astar", "gcc", "lbm", "sphinx3"}
		g.Policies = []sim.Policy{sim.NonSecure, sim.CleanupSpec}
	default:
		return Grid{}, fmt.Errorf("campaign: unknown grid %q (valid: %s)", name, strings.Join(GridNames(), " "))
	}
	return g, nil
}

// ParseSeeds parses a seed-sweep flag: either a comma list ("1,7,42") or
// an inclusive range ("1..5").
func ParseSeeds(s string) ([]uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || a == 0 || b < a {
			return nil, fmt.Errorf("campaign: bad seed range %q (want e.g. 1..5)", s)
		}
		if b-a >= 1000 {
			return nil, fmt.Errorf("campaign: seed range %q too large (max 1000 seeds)", s)
		}
		var seeds []uint64
		for v := a; v <= b; v++ {
			seeds = append(seeds, v)
		}
		return seeds, nil
	}
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("campaign: bad seed %q in %q", part, s)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// ParseList splits a comma-separated flag value, trimming blanks.
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// baselineCycles maps (workload, variant, seed) → non-secure cycles, used
// to normalize every secure policy against its exact baseline cell.
func baselineCycles(results []JobResult) map[string]float64 {
	base := make(map[string]float64)
	for _, r := range results {
		if r.Failed() {
			continue
		}
		rc := r.Job.Config.Resolved()
		if rc.Policy == sim.NonSecure {
			k := fmt.Sprintf("%s/%s/%d", r.Job.Workload, r.Job.Variant, rc.Seed)
			base[k] = float64(r.Result.Cycles)
		}
	}
	return base
}
