package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDeterminism guards the simulator's bit-identical-replay
// contract: the same grid must produce byte-identical exports whether it
// runs serially, on the worker pool, or across processes.
//
// Two violation classes are flagged:
//
//  1. Map-order dependence: `for … range m` where m is a map, anywhere
//     under internal/, sim/, or cmd/. Go randomizes map iteration order,
//     so any such loop that feeds simulation state or user-visible output
//     is a nondeterminism hazard. The canonical collect-keys-then-sort
//     idiom is recognized and allowed; anything else needs
//     //simlint:ordered -- <justification>.
//
//  2. Ambient nondeterminism: importing math/rand (or math/rand/v2), or
//     calling time.Now, under internal/ or sim/. All simulator randomness
//     must flow through explicitly seeded internal/xrand generators, and
//     wall-clock reads are reserved for the campaign reporter's ETA
//     display (annotated //simlint:allow determinism at those sites).
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-order-dependent iteration and ambient randomness (math/rand, time.Now) in simulation and export paths",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	rel := p.Pkg.Rel()
	randScope := hasPathPrefix(rel, "internal") || hasPathPrefix(rel, "sim")
	mapScope := randScope || hasPathPrefix(rel, "cmd") || rel == ""
	if !mapScope {
		return
	}
	xrandPkg := rel == "internal/xrand"

	for _, f := range p.Pkg.Files {
		if randScope && !xrandPkg {
			for _, imp := range f.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "math/rand", "math/rand/v2":
					p.Reportf(imp.Pos(), "import of %s: simulator randomness must flow through explicitly seeded internal/xrand generators", imp.Path.Value)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := p.Pkg.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !isSortedKeysIdiom(p, n) {
						p.Reportf(n.Pos(), "range over map %s: iteration order is randomized; sort the keys first or annotate //simlint:ordered -- <why order is irrelevant>", exprString(n.X))
					}
				}
			case *ast.CallExpr:
				if randScope && isPkgFunc(p, n.Fun, "time", "Now") {
					p.Reportf(n.Pos(), "time.Now in a simulation package: wall-clock reads are nondeterministic; pass cycle counts (or annotate //simlint:allow determinism for reporting-only code)")
				}
			}
			return true
		})
	}
}

// isPkgFunc reports whether fun is a selector pkgName.funcName resolving to
// the package with the given import path suffix.
func isPkgFunc(p *Pass, fun ast.Expr, pkgPath, funcName string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isSortedKeysIdiom recognizes the canonical deterministic map-iteration
// pattern: a range loop whose body only appends to one or more slices,
// where every appended-to slice is later passed to a sort.* or slices.*
// call inside the same enclosing function:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys) // or sort.Slice(keys, …), slices.Sort(keys), …
func isSortedKeysIdiom(p *Pass, rng *ast.RangeStmt) bool {
	appended := appendTargets(rng.Body)
	if len(appended) == 0 {
		return false
	}
	fn := enclosingFunc(p, rng)
	if fn == nil {
		return false
	}
	for name := range appended { //simlint:ordered -- every target must pass; the conjunction is order-independent
		if !sortedLater(p, fn, rng, name) {
			return false
		}
	}
	return true
}

// appendTargets returns the names of local slices the loop body appends to,
// or nil if the body does anything other than plain `x = append(x, …)`
// statements, optionally wrapped in else-less `if` filters (the
// filter-then-sort variant of the idiom).
func appendTargets(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	for _, stmt := range body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil {
			inner := appendTargets(ifs.Body)
			if inner == nil {
				return nil
			}
			for name := range inner { //simlint:ordered -- merging into a set; no order dependence
				out[name] = true
			}
			continue
		}
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return nil
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return nil
		}
		out[lhs.Name] = true
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortedLater reports whether, after the range statement, the enclosing
// function calls into package sort or slices with `name` among the
// arguments.
func sortedLater(p *Pass, fn ast.Node, rng *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && aid.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func enclosingFunc(p *Pass, n ast.Node) ast.Node {
	for _, f := range p.Pkg.Files {
		if f.Pos() <= n.Pos() && n.End() <= f.End() {
			var best ast.Node
			ast.Inspect(f, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					if m.Pos() <= n.Pos() && n.End() <= m.End() {
						best = m
					}
				}
				return true
			})
			return best
		}
	}
	return nil
}

// exprString renders a short source form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	}
	return "expression"
}

// hasPathPrefix reports whether rel is under the given top-level path
// segment ("internal", "sim", "cmd").
func hasPathPrefix(rel, seg string) bool {
	return rel == seg || strings.HasPrefix(rel, seg+"/")
}
