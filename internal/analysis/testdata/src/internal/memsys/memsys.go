// Package memsys is undocomplete golden input for the marker-based roots
// and pointer-write semantics: a `spec` parameter anchors the speculative
// side, and `*p = v` obligates every field of the pointee.
package memsys

// Entry is scoped architectural state.
type Entry struct {
	Valid bool
	Data  uint64
}

// fillEntry overwrites the whole entry through a pointer; the spec
// parameter makes it a speculative root even though its name says
// nothing. Valid is restored below; Data is not.
func fillEntry(e *Entry, spec bool, v uint64) {
	*e = Entry{Valid: true, Data: v} // want `speculative-path mutation of memsys.Entry.Data has no restore/undo counterpart`
	_ = spec
}

// Fill is the public face of the speculative fill.
func Fill(e *Entry, v uint64) {
	fillEntry(e, true, v)
}

// RestoreEntry is cleanup-reachable and restores Valid — but not Data.
func RestoreEntry(e *Entry) {
	e.Valid = false
}
