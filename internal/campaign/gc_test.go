package campaign

import (
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/sim"
)

// gcFixture runs a 4-cell grid into a fresh cache dir and returns the
// cache, its dir, and the jobs.
func gcFixture(t *testing.T) (*Cache, string, []Job) {
	t.Helper()
	g := Grid{
		Name:         "gc",
		Workloads:    []string{"gcc", "lbm"},
		Policies:     []sim.Policy{sim.CleanupSpec},
		Seeds:        []uint64{1, 2},
		Instructions: 500,
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.Cache = cache
	eng.Reporter = NewReporter(io.Discard)
	eng.Manifest = NewManifest(dir, g.Name)
	jobs := g.Jobs()
	if n := len(Failed(eng.Run(jobs))); n != 0 {
		t.Fatalf("%d fixture jobs failed", n)
	}
	if err := eng.Manifest.Save(); err != nil {
		t.Fatal(err)
	}
	return cache, dir, jobs
}

func entryCount(t *testing.T, cache *Cache) int {
	t.Helper()
	n, err := cache.Len()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGCByAge(t *testing.T) {
	cache, dir, jobs := gcFixture(t)
	// Age two entries by backdating their mtimes a year.
	old := time.Now().Add(-365 * 24 * time.Hour)
	for _, job := range jobs[:2] {
		key, err := job.Key()
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + key[:2] + "/" + key + ".json"
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Dry run: reported, nothing removed.
	rep, err := GC(dir, GCOptions{MaxAge: 30 * 24 * time.Hour, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evicted) != 2 || rep.Kept != 2 {
		t.Fatalf("dry run: evicted=%d kept=%d, want 2/2\n%s", len(rep.Evicted), rep.Kept, rep)
	}
	if got := entryCount(t, cache); got != 4 {
		t.Fatalf("dry run removed entries: %d left, want 4", got)
	}

	// Real run: the two stale entries go, their manifest rows demote, and
	// the intent marker does not outlive the eviction.
	rep, err = GC(dir, GCOptions{MaxAge: 30 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evicted) != 2 || len(rep.Demoted) != 2 {
		t.Fatalf("evicted=%d demoted=%d, want 2/2\n%s", len(rep.Evicted), len(rep.Demoted), rep)
	}
	if got := entryCount(t, cache); got != 2 {
		t.Fatalf("%d entries left, want 2", got)
	}
	if _, err := os.Stat(GCIntentPath(dir)); !os.IsNotExist(err) {
		t.Fatal("intent marker survived a completed gc")
	}
	m, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest unreadable after gc")
	}
	pending, done, _, _ := m.Counts()
	if pending != 2 || done != 2 {
		t.Fatalf("manifest counts after gc: pending=%d done=%d, want 2/2", pending, done)
	}
	// The repaired cache is fsck-clean.
	frep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("cache dirty after gc:\n%s", frep)
	}
}

func TestGCByGridMembership(t *testing.T) {
	cache, dir, jobs := gcFixture(t)
	// Retain only the first half of the grid.
	keep := make(map[string]bool)
	for _, job := range jobs[:2] {
		key, err := job.Key()
		if err != nil {
			t.Fatal(err)
		}
		keep[key] = true
	}
	rep, err := GC(dir, GCOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evicted) != 2 || rep.Kept != 2 {
		t.Fatalf("evicted=%d kept=%d, want 2/2\n%s", len(rep.Evicted), rep.Kept, rep)
	}
	if got := entryCount(t, cache); got != 2 {
		t.Fatalf("%d entries left, want 2", got)
	}
	entries, err := cache.Entries()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !keep[e.Key] {
			t.Errorf("non-member entry %s survived gc", e.Key)
		}
	}
}

func TestGCRequiresCriterion(t *testing.T) {
	_, dir, _ := gcFixture(t)
	if _, err := GC(dir, GCOptions{}); err == nil || !strings.Contains(err.Error(), "criterion") {
		t.Fatalf("criterion-free gc ran: %v", err)
	}
}

// TestFsckFinishesInterruptedGC is the gc-race satellite: a gc that died
// after publishing its intent marker but before removing every victim
// leaves entries fsck must flag — and -prune must finish the eviction,
// marker included.
func TestFsckFinishesInterruptedGC(t *testing.T) {
	cache, dir, jobs := gcFixture(t)
	key, err := jobs[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the marker lists one victim whose entry
	// is still on disk.
	if err := writeGCIntent(dir, gcIntent{Schema: SchemaVersion, Keys: []string{key}}); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck called a mid-gc cache clean")
	}
	// Two gc-orphan flaws: the marker itself, then the surviving victim.
	if len(rep.GCOrphans) != 2 || rep.GCOrphans[0].Path != GCIntentPath(dir) {
		t.Fatalf("gc orphans: %+v, want marker + surviving victim", rep.GCOrphans)
	}

	// Prune finishes the dead gc's work: victim gone, marker gone, the
	// victim's done row demoted.
	rep, err = Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("gc victim survived fsck -prune")
	}
	if _, err := os.Stat(GCIntentPath(dir)); !os.IsNotExist(err) {
		t.Fatal("intent marker survived fsck -prune")
	}
	if len(rep.Pruned) == 0 {
		t.Fatal("prune reported no repairs")
	}
	m, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest unreadable after prune")
	}
	if rec := m.Jobs[key]; rec == nil || rec.Status != StatusPending {
		t.Fatalf("victim's manifest row = %+v, want demoted to pending", rec)
	}
	// And the repaired cache is clean.
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("cache still dirty after prune:\n%s", rep)
	}

	// A fresh gc refuses to run over someone else's marker (checked
	// before this prune happened — recreate the window to prove it).
	if err := writeGCIntent(dir, gcIntent{Schema: SchemaVersion, Keys: []string{key}}); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(dir, GCOptions{MaxAge: time.Hour}); err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("gc ran over an existing intent marker: %v", err)
	}
}
