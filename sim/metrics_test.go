package sim

import (
	"reflect"
	"testing"
)

// TestMetricsAggregatesMatchResult is the headline observability contract:
// the final interval sample's cumulative counters must agree exactly with
// the end-of-run Result — no drift between the time series and the
// aggregate record.
func TestMetricsAggregatesMatchResult(t *testing.T) {
	for _, pol := range []Policy{NonSecure, CleanupSpec} {
		col := &Metrics{}
		res, err := RunWorkload("astar", Config{
			Policy: pol, Instructions: 30_000,
			Metrics: col, SampleEvery: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		samples := col.Samples()
		if len(samples) < 2 {
			t.Fatalf("%s: only %d samples for a 30k-instruction run", pol, len(samples))
		}
		final := samples[len(samples)-1]
		if final.Cycle != res.Cycles {
			t.Fatalf("%s: final sample at cycle %d, run ended at %d", pol, final.Cycle, res.Cycles)
		}
		// The final sample's counters are exactly the Result's counter
		// snapshot (same registry, read at the same instant).
		if !reflect.DeepEqual(final.Counters, res.Metrics) {
			t.Fatalf("%s: final sample counters differ from Result.Metrics", pol)
		}
		// And the registry's counters agree with the legacy Result fields.
		checks := map[string]uint64{
			"cpu.cycles":      res.Cycles,
			"cpu.committed":   res.Instructions,
			"cpu.squashes":    res.CPU.Squashes,
			"cpu.mispredicts": res.CPU.Mispredicts,
			"mem.loads":       res.Mem.Loads,
			"mem.stores":      res.Mem.Stores,
			"traffic.regular": res.Traffic.Regular,
		}
		for name, want := range checks {
			if got := final.Counters[name]; got != want {
				t.Errorf("%s: %s = %d in final sample, Result says %d", pol, name, got, want)
			}
		}
		// Monotonicity: cumulative counters never decrease.
		for i := 1; i < len(samples); i++ {
			if samples[i].Counters["cpu.committed"] < samples[i-1].Counters["cpu.committed"] {
				t.Fatalf("%s: cpu.committed decreased between samples %d and %d", pol, i-1, i)
			}
		}
	}
}

// TestObservabilityDoesNotChangeOutcome pins the acceptance criterion that
// attaching the registry, sampler, and trace ring changes no simulation
// outcome: every Result field except the Metrics snapshot must be
// bit-identical with and without instrumentation.
func TestObservabilityDoesNotChangeOutcome(t *testing.T) {
	for _, pol := range []Policy{NonSecure, CleanupSpec, InvisiSpecRevised} {
		base := Config{Policy: pol, Instructions: 20_000, Seed: 3}
		plain, err := RunWorkload("gcc", base)
		if err != nil {
			t.Fatal(err)
		}
		instr := base
		instr.Metrics = &Metrics{}
		instr.SampleEvery = 500
		instr.Trace = NewTraceRing(1 << 12)
		wired, err := RunWorkload("gcc", instr)
		if err != nil {
			t.Fatal(err)
		}
		wired.Metrics = nil // the only field instrumentation is allowed to add
		if !reflect.DeepEqual(plain, wired) {
			t.Fatalf("%s: instrumentation changed the simulation outcome:\nplain %+v\nwired %+v", pol, plain, wired)
		}
	}
}

// TestMetricsHistograms checks the paper-specific histograms fill under
// CleanupSpec: squashed loads produce load-to-squash observations, and
// speculative fills produce exposed-window observations.
func TestMetricsHistograms(t *testing.T) {
	col := &Metrics{}
	_, err := RunWorkload("astar", Config{
		Policy: CleanupSpec, Instructions: 50_000, Metrics: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.load_to_squash_cycles", "cpu.exposed_window_cycles"} {
		h, ok := col.Registry.HistogramByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if h.Count() == 0 {
			t.Errorf("%s recorded nothing on a squash-heavy workload", name)
		}
	}
	// The restore-latency histogram exists under CleanupSpec (it may stay
	// empty on workloads whose squashed fills are all dropped in flight).
	if _, ok := col.Registry.HistogramByName("cleanup.restore_latency_cycles"); !ok {
		t.Fatal("cleanup.restore_latency_cycles not registered under CleanupSpec")
	}
}

// TestSamplerDisabledByDefault: Metrics without SampleEvery yields the
// registry but no time series.
func TestSamplerDisabledByDefault(t *testing.T) {
	col := &Metrics{}
	res, err := RunWorkload("astar", Config{Instructions: 10_000, Metrics: col})
	if err != nil {
		t.Fatal(err)
	}
	if col.Sampler != nil || col.Samples() != nil {
		t.Fatal("SampleEvery=0 must not build a sampler")
	}
	if col.Registry == nil || res.Metrics == nil {
		t.Fatal("registry must still be attached and snapshotted")
	}
}

// TestSampleShorterThanInterval: a run shorter than one interval still
// produces the final flush sample, and it matches the aggregates.
func TestSampleShorterThanInterval(t *testing.T) {
	col := &Metrics{}
	res, err := RunWorkload("astar", Config{
		Instructions: 5_000, Metrics: col, SampleEvery: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := col.Samples()
	if len(samples) != 1 {
		t.Fatalf("%d samples, want exactly the final flush", len(samples))
	}
	if samples[0].Cycle != res.Cycles || samples[0].Counters["cpu.committed"] != res.Instructions {
		t.Fatalf("flush sample %+v does not match result (%d cycles, %d instructions)",
			samples[0], res.Cycles, res.Instructions)
	}
}
