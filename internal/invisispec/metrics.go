package invisispec

import "repro/internal/metrics"

// AttachMetrics binds the Redo baseline's counters into reg under the
// "inv." prefix.
func (p *Policy) AttachMetrics(reg *metrics.Registry) {
	s := &p.Stats
	reg.BindCounter("inv.invisible_loads", &s.InvisibleLoads)
	reg.BindCounter("inv.updates", &s.Updates)
	reg.BindCounter("inv.validations", &s.Validations)
	reg.BindCounter("inv.exposures", &s.Exposures)
}
