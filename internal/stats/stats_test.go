package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean %v, want 2", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	// A zero entry is clamped, not fatal.
	if g := Geomean([]float64{0, 1}); g <= 0 {
		t.Fatalf("clamped geomean %v", g)
	}
}

func TestGeomeanClamped(t *testing.T) {
	g, n := GeomeanClamped([]float64{1, 4})
	if math.Abs(g-2) > 1e-9 || n != 0 {
		t.Fatalf("clean input: geomean %v clamped %d", g, n)
	}
	if _, n := GeomeanClamped([]float64{0, 1, -2, 3}); n != 2 {
		t.Fatalf("clamp count %d, want 2", n)
	}
	if g, n := GeomeanClamped(nil); g != 0 || n != 0 {
		t.Fatal("empty input")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline must be empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if got := []rune(s); len(got) != 4 || got[0] != '▁' || got[3] != '█' {
		t.Fatalf("sparkline %q: want min block first, max block last", s)
	}
	// A flat series must not divide by zero and renders all-low.
	if s := Sparkline([]float64{5, 5, 5}); s != "▁▁▁" {
		t.Fatalf("flat sparkline %q", s)
	}
}

func TestMeanAndSlowdown(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if s := Slowdown(1.051); math.Abs(s-5.1) > 1e-9 {
		t.Fatalf("slowdown %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("T", "a", "bb")
	tab.AddRow("x", "1")
	tab.AddRowf("y", 2.5)
	s := tab.String()
	for _, want := range []string{"T", "a", "bb", "x", "2.50", "--"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| x | 1 |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestTableJSON(t *testing.T) {
	tab := NewTable("T", "a")
	tab.AddRow("1")
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "T" || len(got.Header) != 1 || len(got.Rows) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestSeriesBars(t *testing.T) {
	s := &Series{Name: "S"}
	s.Add("one", 1)
	s.Add("two", 2)
	out := s.Bars(10)
	if !strings.Contains(out, "S") || !strings.Contains(out, "##########") {
		t.Fatalf("bars:\n%s", out)
	}
	// All-zero series must not divide by zero.
	z := &Series{}
	z.Add("zero", 0)
	_ = z.Bars(10)
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("keys %v", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Title ignored", "Workload", "Slowdown")
	tb.AddRow("astar", "5.1%")
	tb.AddRow(`with,comma`, `with "quote"`)
	got := tb.CSV()
	want := "Workload,Slowdown\n" +
		"astar,5.1%\n" +
		"\"with,comma\",\"with \"\"quote\"\"\"\n"
	if got != want {
		t.Fatalf("CSV:\ngot  %q\nwant %q", got, want)
	}
	if strings.Contains(got, "Title") {
		t.Fatal("CSV must not include the title")
	}
}
