// Package met is the metricscomplete analyzer's golden input.
package met

import "example.com/lint/internal/metrics"

// Stats is the stat carrier checked against AttachMetrics below.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // want `exported counter Evictions is never bound`
	//simlint:allow metricscomplete -- deliberately unregistered in the golden input
	Skipped uint64
	note    uint64 // unexported: not required to be bound
}

// Core owns a Stats carrier.
type Core struct {
	Stats Stats
}

// AttachMetrics binds only part of Stats; the analyzer reports the rest.
func (c *Core) AttachMetrics(reg *metrics.Registry) {
	s := &c.Stats
	reg.BindCounter("core.hits", &s.Hits)
	reg.CounterFunc("core.misses", func() uint64 { return s.Misses })
}

// Queue has no Stats field, so its own exported counters are the carrier
// (the MSHR style).
type Queue struct {
	depth  int
	Allocs uint64
	Drops  uint64 // want `exported counter Drops is never bound`
}

// AttachMetrics binds only Allocs.
func (q *Queue) AttachMetrics(reg *metrics.Registry) {
	reg.BindCounter("q.allocs", &q.Allocs)
	reg.GaugeFunc("q.depth", func() float64 { return float64(q.depth) })
}
