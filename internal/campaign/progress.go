package campaign

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter streams campaign progress (completed/total, cache hits,
// failures, ETA) to a writer, one line per completed job. It is safe for
// concurrent use by the engine's workers.
type Reporter struct {
	W io.Writer
	// Every throttles output: only every Nth completion is printed (the
	// final one always is). 0 means every completion.
	Every int

	mu          sync.Mutex
	total       int
	done        int
	cached      int
	failed      int
	quarantined int
	start       time.Time
}

// NewReporter creates a reporter writing to w.
func NewReporter(w io.Writer) *Reporter { return &Reporter{W: w} }

// Start resets the counters for a run of total jobs.
func (r *Reporter) Start(total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total = total
	r.done, r.cached, r.failed, r.quarantined = 0, 0, 0, 0
	r.start = time.Now()
}

// JobDone records one completion and prints a progress line.
func (r *Reporter) JobDone(jr JobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	if jr.Cached {
		r.cached++
	}
	switch {
	case jr.Quarantined:
		r.quarantined++
		line := fmt.Sprintf("campaign: QUARANTINED %s: %v", jr.Job, jr.Err)
		if jr.DumpPath != "" {
			line += fmt.Sprintf(" (dump: %s)", jr.DumpPath)
		}
		fmt.Fprintln(r.W, line)
	case jr.Failed():
		r.failed++
		fmt.Fprintf(r.W, "campaign: FAILED %s after %d attempt(s): %v\n", jr.Job, jr.Attempts, jr.Err)
	}
	if r.Every > 1 && r.done%r.Every != 0 && r.done != r.total {
		return
	}
	line := fmt.Sprintf("campaign: %d/%d done", r.done, r.total)
	if r.cached > 0 {
		line += fmt.Sprintf(" (%d cached)", r.cached)
	}
	if r.failed > 0 {
		line += fmt.Sprintf(" (%d FAILED)", r.failed)
	}
	if r.quarantined > 0 {
		line += fmt.Sprintf(" (%d QUARANTINED)", r.quarantined)
	}
	if eta := r.etaLocked(); eta > 0 {
		line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
	}
	fmt.Fprintln(r.W, line)
}

// etaLocked extrapolates the remaining wall clock from uncached completions.
// Caller holds r.mu.
func (r *Reporter) etaLocked() time.Duration {
	simulated := r.done - r.cached
	if simulated <= 0 || r.done >= r.total {
		return 0
	}
	perJob := time.Since(r.start) / time.Duration(simulated)
	return perJob * time.Duration(r.total-r.done)
}

// Warn prints a non-fatal engine warning (e.g. a cache write failure).
func (r *Reporter) Warn(msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.W, "campaign: warning: %s\n", msg)
}

// Finish prints the summary line.
func (r *Reporter) Finish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	line := fmt.Sprintf("campaign: finished %d job(s) in %s (%d cached, %d simulated, %d failed)",
		r.done, time.Since(r.start).Round(time.Millisecond), r.cached, r.done-r.cached-r.failed-r.quarantined, r.failed)
	if r.quarantined > 0 {
		line += fmt.Sprintf(" (%d quarantined)", r.quarantined)
	}
	fmt.Fprintln(r.W, line)
}
