// Package analysis is simlint's engine: a stdlib-only static-analysis
// driver (go/parser + go/ast + go/types with a recursive source importer —
// no x/tools dependency) plus the simulator-specific analyzers that keep
// the repository's headline guarantees machine-checked:
//
//   - determinism: no map-order-dependent iteration in simulation or
//     export paths, and no stray randomness or wall-clock reads outside
//     the blessed packages — the invariant behind bit-identical parallel
//     vs serial campaign runs. Flow-sensitive: the collect-then-sort
//     idiom is tracked through locals and helper calls on every control
//     path (see determinism.go).
//   - metricscomplete: every exported numeric Stats field reaches the
//     metrics registry in its package's AttachMetrics, so new counters
//     cannot silently drop out of simscope/Perfetto exports.
//   - cachekey: every sim.Config field either participates in the
//     campaign cache key or is explicitly excluded (json:"-") AND zeroed
//     in campaign.Key — the bug class that silently forks or aliases
//     content-addressed cache entries.
//   - cycletyping: latency/cycle-named fields and parameters are uint64,
//     preventing silent truncation in latency arithmetic.
//   - errdiscipline: no panic in internal/ simulation packages outside
//     must* helpers — failures must flow to the campaign engine as errors.
//   - lockorder: the lock-acquisition graph across the concurrent layers
//     (campaign, faultinject, …) is acyclic, and mutex-guarded fields are
//     never touched on paths where the guard is provably not held.
//   - enumexhaustive: every switch over an iota-declared enum covers all
//     of its constants or carries an explicit default — the class of bug
//     that silently drops a coherence-protocol transition.
//   - wireenc: structs reaching JSON journals or the fabric wire encode
//     canonically — no interface-typed content (the dynamic type drifts
//     across a round-trip) and no map keys outside encoding/json's
//     sorted-key guarantee — so journal rows, checksummed cache entries,
//     and protocol messages are byte-stable.
//   - hotalloc: no allocation site (make/new/literals/append/interface
//     boxing/closures/fmt) is reachable from the declared per-cycle hot
//     roots without a justified suppression; simlint -hotreport emits the
//     deterministic allocation budget CI ratchets via HOTPATH_BUDGET.json.
//   - cyclemath: uint64 cycle subtraction a-b is dominated by a provable
//     a>=b guard, and cycle values never cross signed conversions — the
//     classic simulator underflow bug class.
//   - staledirective: a //simlint suppression that suppresses nothing is
//     itself a finding (and is auto-removable with -fix).
//
// Findings are suppressed only by an explicit source directive with a
// justification:
//
//	//simlint:ordered -- <why iteration order is irrelevant here>
//	//simlint:allow <analyzer>[,<analyzer>] -- <why this is safe>
//
// placed on the offending line or the line directly above it. A directive
// without a justification is itself a finding, and so is a directive that
// no longer suppresses anything. A third verb declares facts instead of
// suppressing:
//
//	//simlint:hot -- <why this function runs every cycle>
//
// marks the function declared on the next line as a hotalloc root in
// addition to the committed hotroots.go list.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	// Run is the per-package phase; it may execute concurrently with
	// other packages' passes.
	Run func(*Pass)
	// Finish, when non-nil, runs once after every package's Run phase
	// completed — the hook for module-level checks (lock-graph cycles,
	// stale directives).
	Finish func(*FinishPass)
}

// Analyzers returns the full suite in presentation order. staledirective
// is last on purpose: its Finish phase must observe every suppression
// the other analyzers' findings consumed.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerMetricsComplete,
		AnalyzerCacheKey,
		AnalyzerCycleTyping,
		AnalyzerErrDiscipline,
		AnalyzerLockOrder,
		AnalyzerDeterTaint,
		AnalyzerUndoComplete,
		AnalyzerDeferUnlock,
		AnalyzerEnumExhaustive,
		AnalyzerWireEnc,
		AnalyzerHotAlloc,
		AnalyzerCycleMath,
		AnalyzerStaleDirective,
	}
}

// AnalyzerByName resolves a name to an analyzer in the suite.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Finding is one reported violation. Fix, when non-nil, is a mechanical
// rewrite simlint -fix can apply.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Fix      *Fix           `json:"-"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is one (analyzer, package) execution: the analyzer inspects
// pass.Pkg and reports through pass.Reportf, which applies directive
// suppression before a finding reaches the driver. Passes for different
// packages run concurrently; a Pass itself is single-goroutine.
type Pass struct {
	Mod      *Module
	Pkg      *Package
	analyzer *Analyzer
	runner   *Runner
	findings []Finding
}

// Reportf reports a finding at pos unless a matching //simlint directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix reports a finding carrying an optional mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	if p.runner.suppressed(p.analyzer.Name, position) {
		return
	}
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// FinishPass is the module-level phase handed to Analyzer.Finish after
// every per-package pass completed. It runs serially.
type FinishPass struct {
	Mod      *Module
	analyzer *Analyzer
	runner   *Runner
	findings []Finding
}

// Reportf reports a module-level finding, subject to the same directive
// suppression as per-package reports.
func (p *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix reports a module-level finding carrying an optional fix.
func (p *FinishPass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	if p.runner.suppressed(p.analyzer.Name, position) {
		return
	}
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// directive is one parsed //simlint comment. hits counts how many
// findings it suppressed in the current Run (atomic: passes race on it).
type directive struct {
	verb      string   // "ordered" or "allow"
	analyzers []string // for allow
	reason    string   // text after " -- "
	pos       token.Position
	end       token.Position // where the comment ends (suppression anchor)
	comment   *ast.Comment
	hits      atomic.Int32
}

// suppresses reports whether the directive silences analyzer.
func (d *directive) suppresses(analyzer string) bool {
	switch d.verb {
	case "ordered":
		return analyzer == "determinism"
	case "allow":
		for _, a := range d.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// targets returns the analyzer names the directive can suppress.
func (d *directive) targets() []string {
	if d.verb == "ordered" {
		return []string{"determinism"}
	}
	return d.analyzers
}

// Runner executes analyzers over a module and collects findings.
type Runner struct {
	Mod *Module

	// Workers bounds the per-package analysis pool; 0 means GOMAXPROCS.
	// Findings are byte-identical for every worker count.
	Workers int

	// directives maps file name -> line (where the comment ends) ->
	// parsed directive.
	directives map[string]map[int]*directive
	findings   []Finding // directive-scan findings, gathered serially in NewRunner

	// ran and matchedFiles describe the current Run for the Finish
	// phase: which analyzers executed and which files belong to the
	// selected packages.
	ran          map[string]bool
	matchedFiles map[string]bool

	// Module-wide fact caches, built on first use (concurrency-safe).
	sorterOnce sync.Once
	sorters    map[*types.Func][]bool // which slice params a function sorts
	enumOnce   sync.Once
	enums      map[*types.TypeName]*enumInfo // iota-enum facts per named type
	cgOnce     sync.Once
	cg         *callGraph // module call graph (callgraph.go)
	lockOnce   sync.Once
	locks      *lockFacts
	taintOnce  sync.Once
	taints     *taintFacts
	undoOnce   sync.Once
	undo       *undoFacts
	hotOnce    sync.Once
	hot        *hotFacts // hot-path allocation model (hotalloc.go)

	// lockAcc accumulates cross-package lock-graph edges during the
	// parallel phase; AnalyzerLockOrder.Finish reads it.
	lockAcc lockAccumulator

	// wireAcc accumulates JSON serialization sites during the parallel
	// phase; AnalyzerWireEnc.Finish walks the types they root.
	wireAcc wireAccumulator
}

// NewRunner prepares a runner: it scans every loaded file for //simlint
// directives, reporting malformed ones immediately under the "directive"
// pseudo-analyzer (those findings are not suppressible).
func NewRunner(mod *Module) *Runner {
	r := &Runner{Mod: mod, directives: make(map[string]map[int]*directive)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			r.scanDirectives(f)
		}
	}
	return r
}

func (r *Runner) suppressed(analyzer string, pos token.Position) bool {
	lines := r.directives[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.suppresses(analyzer) {
			d.hits.Add(1)
			return true
		}
	}
	return false
}

// scanDirectives parses the //simlint comments of one file.
func (r *Runner) scanDirectives(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//simlint:")
			if !ok {
				continue
			}
			pos := r.Mod.Fset.Position(c.Pos())
			end := r.Mod.Fset.Position(c.End())
			d := &directive{pos: pos, end: end, comment: c}
			body, reason, hasReason := strings.Cut(text, "--")
			d.reason = strings.TrimSpace(reason)
			fields := strings.Fields(strings.TrimSpace(body))
			if len(fields) == 0 {
				r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos, Message: "empty //simlint directive"})
				continue
			}
			d.verb = fields[0]
			if d.verb != "ordered" && d.verb != "allow" && d.verb != "hot" {
				r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
					Message: fmt.Sprintf("unknown //simlint directive %q", d.verb)})
				continue
			}
			// A directive without a justification is rejected before its
			// arguments are even considered: it must never suppress.
			if !hasReason || d.reason == "" {
				r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
					Message: fmt.Sprintf("//simlint:%s without a justification (append `-- <why this is safe>`)", d.verb)})
				continue
			}
			switch d.verb {
			case "ordered":
				if len(fields) != 1 {
					r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
						Message: "//simlint:ordered takes no arguments (write //simlint:ordered -- <justification>)"})
					continue
				}
			case "hot":
				// Declares the function below a hot-path root for the
				// hotalloc analyzer; it suppresses nothing.
				if len(fields) != 1 {
					r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
						Message: "//simlint:hot takes no arguments (write //simlint:hot -- <why this runs every cycle>)"})
					continue
				}
			case "allow":
				if len(fields) < 2 {
					r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
						Message: "//simlint:allow needs analyzer names (write //simlint:allow <analyzer> -- <justification>)"})
					continue
				}
				var unknown []string
				for _, arg := range fields[1:] {
					for _, name := range strings.Split(arg, ",") {
						if name == "" {
							continue
						}
						if _, ok := AnalyzerByName(name); !ok {
							unknown = append(unknown, name)
						}
						d.analyzers = append(d.analyzers, name)
					}
				}
				if len(unknown) == len(d.analyzers) && len(unknown) > 0 {
					// The directive suppresses only analyzers that no longer
					// exist (renamed or removed): it is dead weight, reported
					// with a removal fix rather than silently ignored.
					r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
						Message: fmt.Sprintf("//simlint:allow suppresses only analyzers that no longer exist (%s) — remove the directive", strings.Join(unknown, ", ")),
						Fix:     removeDirectiveFix(c)})
					continue
				}
				if len(unknown) > 0 {
					bad := false
					for _, name := range unknown {
						r.findings = append(r.findings, Finding{Analyzer: "directive", Pos: pos,
							Message: fmt.Sprintf("//simlint:allow names unknown analyzer %q", name)})
						bad = true
					}
					if bad {
						continue
					}
				}
			}
			if r.directives[pos.Filename] == nil {
				r.directives[pos.Filename] = make(map[int]*directive)
			}
			r.directives[pos.Filename][end.Line] = d
		}
	}
}

// Run executes the analyzers over the packages selected by match (nil
// selects all) and returns the accumulated findings sorted by position
// (ties broken by analyzer name, then message). Per-package passes run
// on a bounded worker pool (Runner.Workers); the result is byte-identical
// to a serial run.
func (r *Runner) Run(analyzers []*Analyzer, match func(*Package) bool) []Finding {
	var pkgs []*Package
	r.ran = make(map[string]bool)
	r.matchedFiles = make(map[string]bool)
	for _, a := range analyzers {
		r.ran[a.Name] = true
	}
	for _, pkg := range r.Mod.Pkgs {
		if match != nil && !match(pkg) {
			continue
		}
		pkgs = append(pkgs, pkg)
		for _, f := range pkg.Files {
			r.matchedFiles[r.Mod.Fset.Position(f.Pos()).Filename] = true
		}
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	// Per-package result slots keep the merge order independent of
	// worker scheduling; the final position sort makes it immaterial
	// anyway, but byte-identity should not hinge on the sort alone.
	perPkg := make([][]Finding, len(pkgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var acc []Finding
				for _, a := range analyzers {
					if a.Run == nil {
						continue
					}
					pass := &Pass{Mod: r.Mod, Pkg: pkgs[i], analyzer: a, runner: r}
					a.Run(pass)
					acc = append(acc, pass.findings...)
				}
				perPkg[i] = acc
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := append([]Finding(nil), r.findings...)
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	// Finish phase: module-level analyzers, serial, after every
	// suppression the per-package phase will ever record.
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fp := &FinishPass{Mod: r.Mod, analyzer: a, runner: r}
		a.Finish(fp)
		out = append(out, fp.findings...)
	}
	sortFindings(out)
	return out
}

// removeDirectiveFix deletes a //simlint comment whose every target
// analyzer has been retired from the suite.
func removeDirectiveFix(c *ast.Comment) *Fix {
	return &Fix{
		Message: "remove //simlint directive naming only retired analyzers",
		Edits:   []TextEdit{{Pos: c.Pos(), End: c.End(), NewText: ""}},
	}
}

// sortFindings orders findings by position, breaking ties by analyzer
// name and then message so same-position findings render deterministically.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
