package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestWatchdogNamesInjectedLivelock seeds a permanent commit stall through
// the fault injector and checks the forward-progress watchdog converts it
// into a structured LivelockError — promptly (within the window, not at
// MaxCycles) and naming the stalled structure with occupancy evidence.
func TestWatchdogNamesInjectedLivelock(t *testing.T) {
	cfg := Config{
		Policy:         NonSecure,
		Instructions:   50_000,
		NoWarmup:       true,
		WatchdogWindow: 2_000,
		Faults: faultinject.Plan("livelock").
			Schedule(faultinject.SiteSimStep, faultinject.KindStall, 1_000),
	}
	_, err := RunWorkload("astar", cfg)
	if err == nil {
		t.Fatal("injected commit stall did not fail the run")
	}
	var lerr *LivelockError
	if !errors.As(err, &lerr) {
		t.Fatalf("run error is not a LivelockError: %v", err)
	}
	if lerr.Stalled != "commit (injected stall)" {
		t.Fatalf("watchdog blamed %q, want the injected commit stall", lerr.Stalled)
	}
	if uint64(lerr.Window) != 2_000 {
		t.Fatalf("window = %d, want 2000", lerr.Window)
	}
	// Detection is prompt: the stall begins by cycle 1000, so the watchdog
	// must fire around 1000+window, far from any MaxCycles bound.
	if uint64(lerr.Cycle) > 5_000 {
		t.Fatalf("watchdog fired at cycle %d, want within the window of the stall", lerr.Cycle)
	}
	if lerr.ROB.Cap == 0 || lerr.ROB.Used == 0 {
		t.Fatalf("livelock report missing ROB occupancy: %+v", lerr)
	}
	if !strings.Contains(err.Error(), "no commit for") {
		t.Fatalf("error text %q missing diagnosis", err)
	}
}

// TestFaultFreeRunsIgnoreInjector pins the zero-overhead default: a nil
// injector and an empty schedule both leave the simulation untouched.
func TestFaultFreeRunsIgnoreInjector(t *testing.T) {
	cfg := Config{Policy: NonSecure, Instructions: 20_000, NoWarmup: true}
	base, err := RunWorkload("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faultinject.Plan("empty") // no scheduled faults
	got, err := RunWorkload("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("an empty fault schedule changed the result:\n got %+v\nwant %+v", got, base)
	}
}
