package metrics

import (
	"strings"
	"testing"
)

func TestCounterKinds(t *testing.T) {
	reg := NewRegistry()
	owned := reg.Counter("owned")
	var field uint64
	reg.BindCounter("bound", &field)
	derived := uint64(0)
	reg.CounterFunc("derived", func() uint64 { return derived * 2 })

	owned.Inc()
	owned.Add(4)
	field = 7
	derived = 3

	for name, want := range map[string]uint64{"owned": 5, "bound": 7, "derived": 6} {
		got, ok := reg.CounterValue(name)
		if !ok || got != want {
			t.Errorf("CounterValue(%q) = %d, %v; want %d, true", name, got, ok, want)
		}
	}
	if _, ok := reg.CounterValue("missing"); ok {
		t.Error("CounterValue of unregistered name reported ok")
	}
}

func TestBindCounterSurvivesStatsReset(t *testing.T) {
	// The simulator resets stats structs by value (stats = Stats{}); a
	// binding to a field of a long-lived owner must read the new value.
	type owner struct{ stats struct{ N uint64 } }
	o := &owner{}
	reg := NewRegistry()
	reg.BindCounter("n", &o.stats.N)
	o.stats.N = 42
	o.stats = struct{ N uint64 }{} // the reset idiom
	o.stats.N = 7
	if got, _ := reg.CounterValue("n"); got != 7 {
		t.Fatalf("bound counter after reset = %d, want 7", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x")
	reg.Counter("x")
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	if h.Count() != 8 || h.Min() != 0 || h.Max() != 1024 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024); h.Sum() != want {
		t.Fatalf("sum=%d want %d", h.Sum(), want)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},     // 0
		{Lo: 1, Hi: 1, Count: 1},     // 1
		{Lo: 2, Hi: 3, Count: 2},     // 2, 3
		{Lo: 4, Hi: 7, Count: 2},     // 4, 7
		{Lo: 8, Hi: 15, Count: 1},    // 8
		{Lo: 1024, Hi: 2047, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if !strings.Contains(h.String(), "count=8") {
		t.Errorf("String() missing summary line:\n%s", h.String())
	}
	if (&Histogram{}).String() != "(empty)\n" {
		t.Error("empty histogram did not render as (empty)")
	}
}

func TestNamesAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count")
	reg.Counter("a.count")
	reg.GaugeFunc("g.occ", func() float64 { return 1.5 })
	h := reg.Histogram("h.lat")
	h.Observe(3)

	names := reg.Names(KindCounter)
	if len(names) != 2 || names[0] != "a.count" || names[1] != "b.count" {
		t.Fatalf("Names(KindCounter) = %v, want sorted [a.count b.count]", names)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 2 || snap.Gauges["g.occ"] != 1.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hs, ok := snap.Histograms["h.lat"]
	if !ok || hs.Count != 1 || hs.Sum != 3 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	if _, ok := reg.HistogramByName("h.lat"); !ok {
		t.Fatal("HistogramByName missed a registered histogram")
	}
}

// TestHotPathZeroAlloc is the contract the whole design hangs on: counter
// increments and histogram observations on the simulator's cycle loop must
// never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	var field uint64
	reg.BindCounter("f", &field)
	h := reg.Histogram("h")
	v := uint64(0)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { field++ }); n != 0 {
		t.Errorf("bound field increment allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 37 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
}

// BenchmarkRegistry is the CI bench guard for the hot path (run with
// -benchtime=100x; the zero-alloc assertion lives in TestHotPathZeroAlloc).
func BenchmarkRegistry(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("c")
	var field uint64
	reg.BindCounter("f", &field)
	h := reg.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		field++
		h.Observe(uint64(i))
	}
}
