package campaign

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/sim"
)

// SummaryTable aggregates a run's results into the campaign's headline
// table: one row per (policy, variant), reporting the mean IPC across all
// cells and — when the grid includes the non-secure baseline — the
// geomean slowdown vs baseline, averaged (arithmetic mean) across seeds.
// Normalization pairs each cell with the baseline cell of the same
// (workload, variant, seed), mirroring how the paper's Table 6 and
// Figure 12 averages are built. Failed jobs are skipped.
func SummaryTable(results []JobResult) *stats.Table {
	t := stats.NewTable("Campaign summary (geomean slowdown vs non-secure, mean across seeds)",
		"Policy", "Variant", "Cells", "Mean IPC", "Slowdown")
	base := baselineCycles(results)

	type pv struct {
		policy  sim.Policy
		variant string
	}
	cells := make(map[pv][]JobResult)
	for _, r := range results {
		if r.Failed() {
			continue
		}
		rc := r.Job.Config.Resolved()
		cells[pv{rc.Policy, r.Job.Variant}] = append(cells[pv{rc.Policy, r.Job.Variant}], r)
	}
	keys := make([]pv, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		return keys[i].variant < keys[j].variant
	})

	for _, k := range keys {
		rs := cells[k]
		var ipcs []float64
		// Per-seed geomean of normalized time over workloads, then mean
		// across seeds.
		bySeed := make(map[uint64][]float64)
		for _, r := range rs {
			ipcs = append(ipcs, r.Result.IPC)
			rc := r.Job.Config.Resolved()
			bk := fmt.Sprintf("%s/%s/%d", r.Job.Workload, r.Job.Variant, rc.Seed)
			if b, ok := base[bk]; ok && b > 0 && rc.Policy != sim.NonSecure {
				bySeed[rc.Seed] = append(bySeed[rc.Seed], float64(r.Result.Cycles)/b)
			}
		}
		slowdown := "-"
		if len(bySeed) > 0 {
			// Iterate seeds in sorted order: float accumulation is not
			// associative, so a map-order mean could differ in the last
			// bit between two runs of the same campaign.
			seedKeys := make([]uint64, 0, len(bySeed))
			for seed := range bySeed {
				seedKeys = append(seedKeys, seed)
			}
			sort.Slice(seedKeys, func(i, j int) bool { return seedKeys[i] < seedKeys[j] })
			var perSeed []float64
			clamped := 0
			for _, seed := range seedKeys {
				g, c := stats.GeomeanClamped(bySeed[seed])
				perSeed = append(perSeed, g)
				clamped += c
			}
			slowdown = fmt.Sprintf("%+.1f%%", stats.Slowdown(stats.Mean(perSeed)))
			if clamped > 0 {
				// A clamped cell means some normalized time was zero or
				// negative — flag the average instead of hiding the cell.
				slowdown += fmt.Sprintf(" [%d clamped]", clamped)
			}
		}
		variant := k.variant
		if variant == "" {
			variant = "-"
		}
		t.AddRow(string(k.policy), variant,
			fmt.Sprintf("%d", len(rs)),
			fmt.Sprintf("%.3f", stats.Mean(ipcs)),
			slowdown)
	}
	return t
}

// resultCSVHeader is the per-job export schema.
var resultCSVHeader = []string{
	"workload", "policy", "variant", "seed", "cycles", "instructions", "ipc",
	"mispredict_rate", "l1_miss_rate", "squash_pki", "loads_per_squash",
	"wait_per_squash", "cleanup_per_squash", "traffic_total",
}

func resultCSVRow(wl string, p sim.Policy, variant string, seed uint64, res sim.Result) []string {
	return []string{
		wl, string(p), variant, fmt.Sprintf("%d", seed),
		fmt.Sprintf("%d", res.Cycles),
		fmt.Sprintf("%d", res.Instructions),
		fmt.Sprintf("%.4f", res.IPC),
		fmt.Sprintf("%.4f", res.MispredictRate),
		fmt.Sprintf("%.4f", res.L1MissRate),
		fmt.Sprintf("%.3f", res.SquashPKI),
		fmt.Sprintf("%.3f", res.LoadsPerSquash),
		fmt.Sprintf("%.2f", res.WaitPerSquash),
		fmt.Sprintf("%.2f", res.CleanupPerSquash),
		fmt.Sprintf("%d", res.Traffic.Total()),
	}
}

// ResultsCSV writes one CSV row per successful job, in job order.
func ResultsCSV(w io.Writer, results []JobResult) error {
	t := stats.NewTable("", resultCSVHeader...)
	for _, r := range results {
		if r.Failed() {
			continue
		}
		rc := r.Job.Config.Resolved()
		t.AddRow(resultCSVRow(r.Job.Workload, rc.Policy, r.Job.Variant, rc.Seed, r.Result)...)
	}
	_, err := io.WriteString(w, t.CSV())
	return err
}

// EntriesCSV writes one CSV row per cache entry (for `campaign export`,
// which rebuilds a report from the cache without re-expanding a grid).
func EntriesCSV(w io.Writer, entries []Entry) error {
	t := stats.NewTable("", resultCSVHeader...)
	for _, e := range entries {
		t.AddRow(resultCSVRow(e.Workload, e.Policy, e.Variant, e.Seed, e.Result)...)
	}
	_, err := io.WriteString(w, t.CSV())
	return err
}
