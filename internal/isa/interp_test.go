package isa

import (
	"testing"

	"repro/internal/arch"
)

func TestInterpBasicProgram(t *testing.T) {
	b := NewBuilder("basic")
	b.Li(1, 5)
	b.Li(2, 7)
	b.Add(3, 1, 2)
	b.Li(4, 0x1000)
	b.Store(4, 0, 3)
	b.Load(5, 4, 0)
	b.Halt()
	it := NewInterp(b.Build())
	it.Run(0)
	if !it.Halted() {
		t.Fatal("did not halt")
	}
	if it.Reg(5) != 12 {
		t.Fatalf("r5 = %d", it.Reg(5))
	}
	if it.Memory().Read64(0x1000) != 12 {
		t.Fatal("store missing")
	}
	if it.Executed != 7 {
		t.Fatalf("executed %d", it.Executed)
	}
}

func TestInterpControlFlow(t *testing.T) {
	b := NewBuilder("ctrl")
	b.Li(1, 3)
	b.Li(9, 0)
	b.Label("loop")
	b.AddI(9, 9, 10)
	b.AddI(1, 1, -1)
	b.Br(CondNE, 1, 0, "loop")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.AddI(9, 9, 1)
	b.Ret()
	it := NewInterp(b.Build())
	it.Run(0)
	if it.Reg(9) != 31 {
		t.Fatalf("r9 = %d, want 31", it.Reg(9))
	}
}

func TestInterpR0Hardwired(t *testing.T) {
	b := NewBuilder("r0")
	b.Li(0, 42)
	b.AddI(1, 0, 1)
	b.Halt()
	it := NewInterp(b.Build())
	it.Run(0)
	if it.Reg(0) != 0 || it.Reg(1) != 1 {
		t.Fatalf("r0=%d r1=%d", it.Reg(0), it.Reg(1))
	}
}

func TestInterpRunBudget(t *testing.T) {
	b := NewBuilder("inf")
	b.Label("loop")
	b.Jmp("loop")
	it := NewInterp(b.Build())
	if n := it.Run(100); n != 100 {
		t.Fatalf("executed %d, want 100", n)
	}
	if it.Halted() {
		t.Fatal("must not be halted")
	}
}

func TestRandomProgramsHalt(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p := RandomProgram(seed, GenConfig{Calls: true, Loops: true})
		it := NewInterp(p)
		if it.Run(1_000_000) >= 1_000_000 {
			t.Fatalf("seed %d: random program did not halt", seed)
		}
		if !it.Halted() {
			t.Fatalf("seed %d: not halted", seed)
		}
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	a := RandomProgram(7, GenConfig{Calls: true, Loops: true})
	b := RandomProgram(7, GenConfig{Calls: true, Loops: true})
	if len(a.Code) != len(b.Code) {
		t.Fatal("non-deterministic generator")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	// And different seeds differ.
	c := RandomProgram(8, GenConfig{Calls: true, Loops: true})
	if len(a.Code) == len(c.Code) {
		same := true
		for i := range a.Code {
			if a.Code[i] != c.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical programs")
		}
	}
}

func TestRandomProgramTouchesMemoryWindow(t *testing.T) {
	p := RandomProgram(3, GenConfig{Calls: true, Loops: true})
	it := NewInterp(p)
	it.Run(0)
	// At least one store should have landed in the window for the
	// differential tests' memory comparison to be meaningful.
	changed := false
	for w := 0; w < 64; w++ {
		addr := arch.Addr(0x1000 + w*8)
		if _, ok := p.Data[addr]; ok && it.Memory().Read64(addr) != p.Data[addr] {
			changed = true
		}
	}
	if !changed {
		t.Log("seed 3 performed no visible stores; acceptable but worth knowing")
	}
}
