package memsys

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)

func testConfig() Config {
	cfg := DefaultConfig(1)
	// Small L1 so eviction tests are easy: 4 sets x 2 ways.
	cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 512, Ways: 2, Repl: cache.ReplLRU}
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 16, Repl: cache.ReplLRU}
	return cfg
}

// run drives the hierarchy until the given txn completes, returning the
// completion cycle.
func run(h *Hierarchy, t *Txn) arch.Cycle {
	for c := t.Issued; c <= t.DoneAt+1; c++ {
		h.Tick(c)
	}
	return t.DoneAt
}

func TestLoadMissFillsBothLevels(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x100)
	var done *Txn
	txn, ok := h.Load(0, line, 0, 1, LoadOpts{Spec: true, Kind: KindRegular}, func(x *Txn) { done = x })
	if !ok {
		t.Fatal("load rejected")
	}
	if txn.Level != LevelMem {
		t.Fatalf("level %v, want Mem", txn.Level)
	}
	wantLat := h.cfg.L1RT + h.L2RT() + h.cfg.DRAM.RTCycles
	if txn.DoneAt != wantLat {
		t.Fatalf("DoneAt %d, want %d", txn.DoneAt, wantLat)
	}
	run(h, txn)
	if done == nil {
		t.Fatal("OnDone not called")
	}
	if !done.SEFE.L1Fill || !done.SEFE.L2Fill {
		t.Fatalf("SEFE %+v: both fills expected", done.SEFE)
	}
	if h.ProbeLevel(0, line) != LevelL1 {
		t.Fatal("line must be in L1 after fill")
	}
	if spec, by := h.L1(0).SpecInfo(line); !spec || by != 0 {
		t.Fatal("speculative install must be marked")
	}
	if h.L1MSHR(0).Len() != 0 {
		t.Fatal("MSHR entry must be released")
	}
}

func TestLoadHitLatency(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x100)
	txn, _ := h.Load(0, line, 0, 1, LoadOpts{}, nil)
	run(h, txn)
	txn2, _ := h.Load(0, line, 200, 2, LoadOpts{}, nil)
	if txn2.Level != LevelL1 || txn2.DoneAt != 200+h.cfg.L1RT {
		t.Fatalf("hit: level %v doneAt %d", txn2.Level, txn2.DoneAt)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x100)
	txn, _ := h.Load(0, line, 0, 1, LoadOpts{}, nil)
	run(h, txn)
	h.L1(0).Invalidate(line)
	txn2, _ := h.Load(0, line, 500, 2, LoadOpts{}, nil)
	if txn2.Level != LevelL2 {
		t.Fatalf("level %v, want L2", txn2.Level)
	}
	if txn2.DoneAt != 500+h.cfg.L1RT+h.L2RT() {
		t.Fatalf("DoneAt %d", txn2.DoneAt)
	}
}

func TestEvictionRecordedInSEFE(t *testing.T) {
	h := New(testConfig())
	// L1 has 4 sets; lines 0, 4, 8 share set 0.
	mk := func(i int) arch.LineAddr { return arch.LineAddr(i * 4) }
	for i := 0; i < 2; i++ {
		txn, _ := h.Load(0, mk(i), arch.Cycle(i*300), uint64(i), LoadOpts{}, nil)
		run(h, txn)
	}
	var fill *Txn
	txn, _ := h.Load(0, mk(2), 1000, 9, LoadOpts{Spec: true}, func(x *Txn) { fill = x })
	run(h, txn)
	if fill == nil || !fill.SEFE.L1EvictValid {
		t.Fatalf("eviction not recorded: %+v", fill)
	}
	if fill.SEFE.L1EvictAddr != mk(0) {
		t.Fatalf("victim %v, want %v (LRU)", fill.SEFE.L1EvictAddr, mk(0))
	}
}

func TestInflightSquashDropsFill(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x200)
	txn, _ := h.Load(0, line, 0, 7, LoadOpts{Spec: true}, nil)
	// Squash while in flight.
	if !h.SquashLoad(0, line, 7) {
		t.Fatal("squash must find the waiter")
	}
	if h.L1MSHR(0).Zombies() != 1 {
		t.Fatal("entry must be a zombie")
	}
	run(h, txn)
	if !txn.Dropped {
		t.Fatal("fill must be dropped")
	}
	if h.ProbeLevel(0, line) != LevelMem {
		t.Fatal("no cache level may hold the line after a dropped fill")
	}
	if h.Stats.DroppedFills != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
	if h.L1MSHR(0).Zombies() != 0 {
		t.Fatal("zombie must be released at data return")
	}
}

func TestSquashWithSurvivingMergedWaiterKeepsFill(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x200)
	t1, _ := h.Load(0, line, 0, 1, LoadOpts{Spec: true}, nil)
	t2, _ := h.Load(0, line, 0, 2, LoadOpts{Spec: true}, nil)
	if t1.DoneAt != t2.DoneAt {
		t.Fatal("merged loads must complete together")
	}
	// Squash only the first; the second still wants the data.
	h.SquashLoad(0, line, 1)
	run(h, t1)
	if t1.Dropped {
		t.Fatal("fill must survive for the merged waiter")
	}
	if h.ProbeLevel(0, line) != LevelL1 {
		t.Fatal("line must be installed")
	}
}

func TestMergedLoadsShareOneMemoryRequest(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x300)
	h.Load(0, line, 0, 1, LoadOpts{}, nil)
	before := h.DRAM().Stats.Reads
	h.Load(0, line, 1, 2, LoadOpts{}, nil)
	if h.DRAM().Stats.Reads != before {
		t.Fatal("merged load must not issue a second memory request")
	}
}

func TestInvisibleLoadChangesNothing(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x400)
	snapL1 := h.L1(0).SnapshotTags()
	snapL2 := h.L2().SnapshotTags()
	txn, _ := h.Load(0, line, 0, 1, LoadOpts{Spec: true, NoFill: true, Kind: KindInvisible}, nil)
	run(h, txn)
	if txn.Level != LevelMem {
		t.Fatalf("level %v", txn.Level)
	}
	if len(h.L1(0).SnapshotTags()) != len(snapL1) || len(h.L2().SnapshotTags()) != len(snapL2) {
		t.Fatal("invisible load changed cache contents")
	}
	if h.L1MSHR(0).Len() != 0 {
		t.Fatal("invisible load must not hold an MSHR")
	}
	if h.Traffic.Invisible == 0 {
		t.Fatal("invisible traffic must be counted")
	}
}

func TestStoreInstallsModified(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x500)
	h.Store(0, line, 0)
	if h.L1(0).State(line) != arch.Modified {
		t.Fatalf("state %v", h.L1(0).State(line))
	}
	if h.ProbeLevel(0, line) != LevelL1 {
		t.Fatal("store must install")
	}
	if h.Stats.Stores != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestFlushRemovesEverywhere(t *testing.T) {
	h := New(testConfig())
	line := arch.LineAddr(0x600)
	txn, _ := h.Load(0, line, 0, 1, LoadOpts{}, nil)
	run(h, txn)
	h.Flush(0, line)
	if h.ProbeLevel(0, line) != LevelMem {
		t.Fatal("flush must remove the line from L1 and L2")
	}
}

func TestCleanupInvalidateAndRestore(t *testing.T) {
	h := New(testConfig())
	victim := arch.LineAddr(0)
	txn, _ := h.Load(0, victim, 0, 1, LoadOpts{}, nil)
	run(h, txn)
	// Fill the second way of set 0 too.
	txn, _ = h.Load(0, arch.LineAddr(4), 300, 2, LoadOpts{}, nil)
	run(h, txn)
	// Transient load evicts the victim.
	var fill *Txn
	txn, _ = h.Load(0, arch.LineAddr(8), 600, 3, LoadOpts{Spec: true}, func(x *Txn) { fill = x })
	run(h, txn)
	if fill == nil || !fill.SEFE.L1EvictValid {
		t.Fatal("setup: no eviction")
	}
	// Cleanup: invalidate the transient line, restore the victim.
	if !h.CleanupInvalidateL1(0, arch.LineAddr(8)) {
		t.Fatal("invalidate must find the transient line")
	}
	lat := h.RestoreL1(0, fill.SEFE, 1000)
	if lat != h.L2RT() {
		t.Fatalf("restore latency %d, want L2 RT %d", lat, h.L2RT())
	}
	if _, ok := h.L1(0).Probe(fill.SEFE.L1EvictAddr); !ok {
		t.Fatal("victim not restored")
	}
	if _, ok := h.L1(0).Probe(arch.LineAddr(8)); ok {
		t.Fatal("transient line still present")
	}
}

func TestRestoreIsNoOpWithoutEviction(t *testing.T) {
	h := New(testConfig())
	if lat := h.RestoreL1(0, cache.SEFE{}, 0); lat != 0 {
		t.Fatalf("latency %d", lat)
	}
}

func TestSpecWindowProtection(t *testing.T) {
	cfg := testConfig()
	cfg.NumCores = 2
	cfg.ProtectSpecWindow = true
	h := New(cfg)
	line := arch.LineAddr(0x700)
	// Core 0 installs speculatively... but into core 0's L1, so a probe
	// from core 1 misses L1 anyway and hits L2. Make core 1 share core
	// 0's L1? No: the window protection also guards the L2 copy. Probe
	// the L2 path.
	txn, _ := h.Load(0, line, 0, 1, LoadOpts{Spec: true}, nil)
	run(h, txn)
	if spec, _ := h.L2().SpecInfo(line); !spec {
		t.Fatal("L2 copy must be spec-marked")
	}
	// Core 1 accesses within the window: the L2 copy is speculative, so
	// its miss is serviced from memory-latency path. We validate via the
	// same-L1 dummy-miss mechanism using core 1's own L1 after a
	// cross-install: exercise dummyMissLatency directly.
	if lat := h.dummyMissLatency(line); lat != h.L2RT()+h.cfg.DRAM.RTCycles {
		t.Fatalf("dummy miss latency %d; spec L2 copy must cost a memory trip", lat)
	}
	// After the installer's load retires, marks are cleared and the
	// protected latency relaxes to an L2 hit.
	h.ClearSpecMark(0, line)
	if lat := h.dummyMissLatency(line); lat != h.L2RT() {
		t.Fatalf("post-retire dummy latency %d, want L2 RT", lat)
	}
}

func TestCrossCoreL1DummyMiss(t *testing.T) {
	// Two cores sharing an L1 partition is the SMT case; model it by
	// having core 1 probe a line spec-installed in ITS OWN L1 by
	// marking installer as core 0 (as an SMT sibling would see).
	cfg := testConfig()
	cfg.NumCores = 2
	cfg.ProtectSpecWindow = true
	h := New(cfg)
	line := arch.LineAddr(0x800)
	txn, _ := h.Load(1, line, 0, 1, LoadOpts{}, nil)
	run(h, txn)
	h.L1(1).MarkSpec(line, 0) // installed by sibling thread 0
	probe, _ := h.Load(1, line, 500, 2, LoadOpts{}, nil)
	if probe.DoneAt-500 <= h.cfg.L1RT {
		t.Fatal("window-protected hit must cost a dummy miss")
	}
	if h.Stats.DummyMisses != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestSafeGetSDelaysOnRemoteOwner(t *testing.T) {
	cfg := testConfig()
	cfg.NumCores = 2
	h := New(cfg)
	line := arch.LineAddr(0x900)
	h.Store(1, line, 0) // core 1 owns M
	txn, ok := h.Load(0, line, 10, 5, LoadOpts{Spec: true, SafeGetS: true}, nil)
	if !ok || txn.Level != LevelDelayed {
		t.Fatalf("want LevelDelayed, got %+v ok=%v", txn, ok)
	}
	// No state change on the remote side.
	if h.L1(1).State(line) != arch.Modified {
		t.Fatal("GetS-Safe must not downgrade the remote owner")
	}
	// Retry without SafeGetS (correct path) succeeds and downgrades.
	txn2, _ := h.Load(0, line, 20, 6, LoadOpts{}, nil)
	run(h, txn2)
	if h.L1(1).State(line) != arch.Shared {
		t.Fatal("plain GetS must downgrade")
	}
}

func TestMSHRFullRejectsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.L1MSHRs = 1
	h := New(cfg)
	h.Load(0, arch.LineAddr(0x10), 0, 1, LoadOpts{}, nil)
	if _, ok := h.Load(0, arch.LineAddr(0x20), 0, 2, LoadOpts{}, nil); ok {
		t.Fatal("second miss must be rejected with a full MSHR")
	}
	// Same line merges fine even when full.
	if _, ok := h.Load(0, arch.LineAddr(0x10), 0, 3, LoadOpts{}, nil); !ok {
		t.Fatal("merge must succeed despite full MSHR")
	}
}

func TestEpochBump(t *testing.T) {
	h := New(testConfig())
	if h.Epoch(0) != 0 {
		t.Fatal("initial epoch")
	}
	if e := h.BumpEpoch(0); e != 1 {
		t.Fatalf("epoch %d", e)
	}
}

func TestInclusionBackInvalidate(t *testing.T) {
	cfg := testConfig()
	// Tiny L2: 2 sets x 2 ways = 4 lines, so installs quickly evict.
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 256, Ways: 2, Repl: cache.ReplLRU}
	h := New(cfg)
	// Fill L2 set 0 (L2 lines 0 and 2 with 2 sets).
	lines := []arch.LineAddr{0, 2, 4}
	for i, l := range lines {
		txn, _ := h.Load(0, l, arch.Cycle(i*1000), uint64(i), LoadOpts{}, nil)
		run(h, txn)
	}
	// Line 0 was evicted from L2 by line 4's install; inclusion demands
	// it left the L1 too.
	if _, hit := h.L2().Probe(0); hit {
		t.Skip("LRU kept line 0; adjust lines")
	}
	if _, hit := h.L1(0).Probe(0); hit {
		t.Fatal("inclusion violated: L1 holds a line the L2 evicted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	h := New(testConfig())
	txn, _ := h.Load(0, arch.LineAddr(0xA0), 0, 1, LoadOpts{Kind: KindRegular}, nil)
	run(h, txn)
	// L1 access + L1->L2 + L2->mem = 3 messages.
	if h.Traffic.Regular != 3 {
		t.Fatalf("regular traffic %d, want 3", h.Traffic.Regular)
	}
	h.ResetTraffic()
	if h.Traffic.Total() != 0 {
		t.Fatal("ResetTraffic failed")
	}
}

func TestIFetchHitAndMiss(t *testing.T) {
	h := New(DefaultConfig(1))
	// Cold fetch: miss to memory.
	ready := h.IFetch(0, 0, 100)
	if ready <= 100 {
		t.Fatal("cold instruction fetch must stall")
	}
	// Same line: hit, no stall.
	if got := h.IFetch(0, 1, 200); got != 200 {
		t.Fatalf("warm fetch stalled until %d", got)
	}
	// Next line: L2 hit after... the first fill went through installL2,
	// but only the first line; pc 8 is the next line, cold again.
	ready2 := h.IFetch(0, 8, 300)
	if ready2 <= 300 {
		t.Fatal("next-line fetch must miss")
	}
	if h.L1I(0) == nil || h.L1I(0).Stats.Misses != 2 {
		t.Fatalf("icache stats: %+v", h.L1I(0).Stats)
	}
}

func TestIFetchDisabled(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1I.SizeBytes = 0
	h := New(cfg)
	if got := h.IFetch(0, 0, 50); got != 50 {
		t.Fatal("disabled icache must never stall")
	}
	if h.L1I(0) != nil {
		t.Fatal("L1I must be nil when disabled")
	}
}

func TestPrewarmICache(t *testing.T) {
	h := New(DefaultConfig(1))
	h.PrewarmICache(0, 100) // 100 instructions = 13 lines
	for pc := 0; pc < 100; pc += 5 {
		if got := h.IFetch(0, arch.Addr(pc), 10); got != 10 {
			t.Fatalf("pc %d missed after prewarm", pc)
		}
	}
}
