package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// AnalyzerCacheKey guards the campaign cache's content-addressing: every
// field of sim.Config must either participate in the cache key (it is
// marshaled into the canonical JSON that campaign.Key hashes) or be
// explicitly excluded — tagged json:"-" AND zeroed in campaign.Key's
// resolved copy, so a future tag regression cannot silently fork keys.
//
// This is exactly the bug class PR 2 fixed by hand when the observability
// hooks (Trace, Metrics, SampleEvery) were added to Config: a field that
// is neither keyed nor excluded either aliases distinct configurations
// onto one cache slot (wrong results served) or forks identical ones
// (cache misses forever). The analyzer triggers on any package-level
// function Key that takes a Config struct from another package, so it
// also covers the golden-test mini-module.
var AnalyzerCacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "require every sim.Config field to participate in the campaign cache key or be json:\"-\" and zeroed in campaign.Key",
	Run:  runCacheKey,
}

func runCacheKey(p *Pass) {
	decls := packageFuncDecls(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Key" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := configParam(fn.Type().(*types.Signature), p.Pkg.Types)
			if named == nil {
				continue
			}
			cfg := named.Underlying().(*types.Struct)
			zeroed := make(map[string]bool)
			collectZeroed(p, fd, cfg, decls, map[*ast.FuncDecl]bool{}, zeroed)
			for i := 0; i < cfg.NumFields(); i++ {
				field := cfg.Field(i)
				if !field.Exported() {
					p.Reportf(field.Pos(),
						"unexported Config field %s: encoding/json skips it, so it can never participate in the cache key and cannot be audited; export it or keep it out of Config", field.Name())
					continue
				}
				if jsonTagName(cfg.Tag(i)) != "-" {
					continue // participates in the canonical JSON — keyed
				}
				if !zeroed[field.Name()] {
					p.Reportf(field.Pos(),
						"Config.%s is excluded from the cache key (json:\"-\") but not zeroed in %s.Key; zero it there so a tag regression cannot silently fork cache keys", field.Name(), p.Pkg.Types.Name())
				}
			}
		}
	}
}

// configParam returns the named struct type of a parameter named-type
// "Config" declared outside the analyzed package (sim.Config seen from
// campaign), or nil.
func configParam(sig *types.Signature, self *types.Package) *types.Named {
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() == self {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); ok {
			return named
		}
	}
	return nil
}

// packageFuncDecls indexes the package's function declarations by their
// type object, so the zeroing walk can follow calls into helpers.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// collectZeroed accumulates the Config fields zeroed in fd's body and,
// transitively, in the bodies of same-package functions fd calls — so a
// Key that delegates to a helper (campaign.Key → cellKey) still gets
// credit for the helper's zeroing. The visited set bounds recursion.
func collectZeroed(p *Pass, fd *ast.FuncDecl, cfg *types.Struct, decls map[*types.Func]*ast.FuncDecl, visited map[*ast.FuncDecl]bool, out map[string]bool) {
	if visited[fd] {
		return
	}
	visited[fd] = true
	//simlint:ordered -- set union into out; insertion order cannot change the result
	for name := range assignedConfigFields(p, fd.Body, cfg) {
		out[name] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := p.Pkg.Info.Uses[id].(*types.Func); ok {
			if callee, ok := decls[fn]; ok {
				collectZeroed(p, callee, cfg, decls, visited, out)
			}
		}
		return true
	})
}

// assignedConfigFields collects the Config field names assigned (zeroed)
// anywhere in the Key body, e.g. `rc.Trace = nil`.
func assignedConfigFields(p *Pass, body *ast.BlockStmt, cfg *types.Struct) map[string]bool {
	fieldOwner := make(map[*types.Var]bool, cfg.NumFields())
	for i := 0; i < cfg.NumFields(); i++ {
		fieldOwner[cfg.Field(i)] = true
	}
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s, ok := p.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok && fieldOwner[v] {
					out[v.Name()] = true
				}
			}
		}
		return true
	})
	return out
}

// jsonTagName extracts the name part of a struct tag's json key.
func jsonTagName(tag string) string {
	v := reflect.StructTag(tag).Get("json")
	name, _, _ := strings.Cut(v, ",")
	return name
}
