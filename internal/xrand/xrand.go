// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used everywhere the simulator needs randomness: random cache
// replacement, CEASER key generation, and synthetic workload construction.
//
// The simulator must be reproducible run-to-run for a given seed, so all
// randomness flows through explicitly seeded xrand.Rand instances rather
// than global math/rand state.
package xrand

// Rand is a splitmix64-based pseudo-random generator. It is not safe for
// concurrent use; give each subsystem its own instance.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *Rand {
	//simlint:allow hotalloc -- constructor; the only simulated-hot-path caller creates one generator per periodic CEASER remap epoch, an amortized event
	return &Rand{state: seed}
}

// Uint64 returns the next value in the stream (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		//simlint:allow errdiscipline -- API contract mirrors math/rand: a non-positive bound is a programmer error
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		//simlint:allow errdiscipline -- API contract mirrors math/rand: a zero bound is a programmer error
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash64 deterministically mixes x into a pseudo-random 64-bit value without
// advancing any generator state. Synthetic programs use it to derive
// reproducible per-instance values from (pc, occurrence) pairs.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
