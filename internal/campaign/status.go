package campaign

import "sort"

// StatusSnapshot is the live view of a campaign served by
// `campaign run -http` at /status: the counts summary plus one row per
// cell (state, cache hit/miss, quarantine, per-cell IPC). Rows are
// value copies taken under the manifest lock, so the snapshot is safe to
// marshal while workers keep appending, and sorted so the JSON is
// deterministic for a given campaign state.
type StatusSnapshot struct {
	Grid        string      `json:"grid"`
	Total       int         `json:"total"`
	Pending     int         `json:"pending"`
	Done        int         `json:"done"`
	Failed      int         `json:"failed"`
	Quarantined int         `json:"quarantined"`
	Cells       []JobRecord `json:"cells"`
}

// Status captures the manifest's current state for the HTTP status
// endpoint (and anything else that wants a consistent point-in-time
// copy rather than live record pointers).
func (m *Manifest) Status() StatusSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := StatusSnapshot{Grid: m.Grid, Total: len(m.Jobs)}
	snap.Cells = make([]JobRecord, 0, len(m.Jobs))
	//simlint:ordered -- rows are collected then sorted below; counting is commutative
	for _, rec := range m.Jobs {
		snap.Cells = append(snap.Cells, *rec)
		switch rec.Status {
		case StatusDone:
			snap.Done++
		case StatusFailed:
			snap.Failed++
		case StatusQuarantined:
			snap.Quarantined++
		default:
			snap.Pending++
		}
	}
	sort.Slice(snap.Cells, func(i, j int) bool {
		return lessRecord(&snap.Cells[i], &snap.Cells[j])
	})
	return snap
}
