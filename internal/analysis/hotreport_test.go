package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotReportDeterministic requires the budget JSON to be byte-identical
// across worker counts and repeated runs — the contract that lets CI diff
// the emitted report against the committed HOTPATH_BUDGET.json.
func TestHotReportDeterministic(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 16} {
		mod, err := Load(filepath.Join("testdata", "src"))
		if err != nil {
			t.Fatalf("load testdata module: %v", err)
		}
		r := NewRunner(mod)
		r.Workers = workers
		blob, err := r.HotReport().MarshalIndent()
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		if ref == nil {
			ref = blob
			continue
		}
		if !bytes.Equal(blob, ref) {
			t.Errorf("workers=%d: report differs from workers=1:\n%s\nvs\n%s", workers, blob, ref)
		}
	}
}

// TestHotReportTestdataBudget pins the golden module's budget: suppressed
// sites count (the budget tracks what the code does, not what directives
// excuse), the splice idiom is proven free, and cold code contributes
// nothing.
func TestHotReportTestdataBudget(t *testing.T) {
	mod, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("load testdata module: %v", err)
	}
	rep := NewRunner(mod).HotReport()

	wantRoots := []string{"internal/hotpath.Step"}
	if !sameStrings(rep.Roots, wantRoots) {
		t.Fatalf("roots = %v, want %v", rep.Roots, wantRoots)
	}

	byFn := make(map[string]HotFnCost, len(rep.Functions))
	for _, fc := range rep.Functions {
		byFn[fc.Fn] = fc
	}
	step, ok := byFn["internal/hotpath.Step"]
	if !ok {
		t.Fatal("no budget entry for internal/hotpath.Step")
	}
	// append + box + closure + the directive-suppressed make.
	for kind, n := range map[string]int{"append": 1, "box": 1, "closure": 1, "make": 1} {
		if step.Sites[kind] != n {
			t.Errorf("Step %s sites = %d, want %d", kind, step.Sites[kind], n)
		}
	}
	helper, ok := byFn["internal/hotpath.helper"]
	if !ok || helper.Sites["append"] != 1 {
		t.Errorf("helper budget = %+v, want one append site", helper)
	}
	// remove's splice is proven in place; Cold is unreachable.
	for _, fn := range []string{"internal/hotpath.remove", "internal/hotpath.Cold"} {
		if fc, ok := byFn[fn]; ok {
			t.Errorf("%s has a budget entry (%+v), want none", fn, fc)
		}
	}
	if want := step.Total + helper.Total; rep.Total != want {
		t.Errorf("total = %d, want %d (Step %d + helper %d)", rep.Total, want, step.Total, helper.Total)
	}
}

// TestCompareHotBudget pins the ratchet semantics: growth in any form is a
// violation, shrinkage never is.
func TestCompareHotBudget(t *testing.T) {
	budget := &HotReport{
		Schema: HotReportSchema,
		Roots:  []string{"internal/cpu.Machine.Step"},
		Total:  3,
		Functions: []HotFnCost{
			{Fn: "internal/cpu.Machine.Step", Total: 2, Sites: map[string]int{"append": 1, "box": 1}},
			{Fn: "internal/cache.Cache.Lookup", Total: 1, Sites: map[string]int{"make": 1}},
		},
	}
	cases := []struct {
		name    string
		current *HotReport
		want    []string // substrings, one per expected violation
	}{
		{
			name:    "identical",
			current: budget,
		},
		{
			name: "shrinkage is never a violation",
			current: &HotReport{
				Schema: HotReportSchema,
				Roots:  []string{"internal/cpu.Machine.Step"},
				Total:  1,
				Functions: []HotFnCost{
					{Fn: "internal/cpu.Machine.Step", Total: 1, Sites: map[string]int{"append": 1}},
				},
			},
		},
		{
			name: "new function entered the hot region",
			current: &HotReport{
				Schema: HotReportSchema,
				Roots:  []string{"internal/cpu.Machine.Step"},
				Total:  3,
				Functions: []HotFnCost{
					{Fn: "internal/cpu.Machine.Step", Total: 1, Sites: map[string]int{"append": 1}},
					{Fn: "internal/cache.Cache.Lookup", Total: 1, Sites: map[string]int{"make": 1}},
					{Fn: "internal/memsys.NewTxn", Total: 1, Sites: map[string]int{"lit": 1}},
				},
			},
			want: []string{"internal/memsys.NewTxn has 1 allocation site(s) but no budget entry"},
		},
		{
			name: "per-kind growth trips even when another kind shrinks",
			current: &HotReport{
				Schema: HotReportSchema,
				Roots:  []string{"internal/cpu.Machine.Step"},
				Total:  3,
				Functions: []HotFnCost{
					{Fn: "internal/cpu.Machine.Step", Total: 2, Sites: map[string]int{"closure": 2}},
					{Fn: "internal/cache.Cache.Lookup", Total: 1, Sites: map[string]int{"make": 1}},
				},
			},
			want: []string{"internal/cpu.Machine.Step grew closure sites 0 -> 2"},
		},
		{
			name: "total growth",
			current: &HotReport{
				Schema: HotReportSchema,
				Roots:  []string{"internal/cpu.Machine.Step"},
				Total:  4,
				Functions: []HotFnCost{
					{Fn: "internal/cpu.Machine.Step", Total: 3, Sites: map[string]int{"append": 2, "box": 1}},
					{Fn: "internal/cache.Cache.Lookup", Total: 1, Sites: map[string]int{"make": 1}},
				},
			},
			want: []string{
				"internal/cpu.Machine.Step grew append sites 1 -> 2",
				"total allocation sites grew 3 -> 4",
			},
		},
		{
			name: "root set drift",
			current: &HotReport{
				Schema: HotReportSchema,
				Roots:  []string{"internal/cpu.Machine.Step", "internal/cache.Cache.Tick"},
				Total:  3,
				Functions: []HotFnCost{
					{Fn: "internal/cpu.Machine.Step", Total: 2, Sites: map[string]int{"append": 1, "box": 1}},
					{Fn: "internal/cache.Cache.Lookup", Total: 1, Sites: map[string]int{"make": 1}},
				},
			},
			want: []string{"root set changed"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := CompareHotBudget(budget, c.current)
			if len(got) != len(c.want) {
				t.Fatalf("%d violation(s) %v, want %d", len(got), got, len(c.want))
			}
			for i, sub := range c.want {
				if !strings.Contains(got[i], sub) {
					t.Errorf("violation %d = %q, want it to contain %q", i, got[i], sub)
				}
			}
		})
	}
}

// TestParseHotReport covers the round trip and the schema guard.
func TestParseHotReport(t *testing.T) {
	rep := &HotReport{
		Schema: HotReportSchema,
		Roots:  []string{"internal/cpu.Machine.Step"},
		Total:  1,
		Functions: []HotFnCost{
			{Fn: "internal/cpu.Machine.Step", Total: 1, Sites: map[string]int{"box": 1}},
		},
	}
	blob, err := rep.MarshalIndent()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseHotReport(blob)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if violations := CompareHotBudget(rep, back); len(violations) != 0 {
		t.Errorf("round trip is not a fixed point: %v", violations)
	}
	if _, err := ParseHotReport([]byte(`{"schema": 99}`)); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Errorf("schema mismatch error = %v, want it to name schema 99", err)
	}
	if _, err := ParseHotReport([]byte(`{`)); err == nil {
		t.Error("truncated JSON parsed without error")
	}
}

// TestRepoHotBudgetClean holds the committed HOTPATH_BUDGET.json to the
// real module: the same check CI runs via simlint -hotbudget, so a budget
// regression fails locally before it fails the pipeline.
func TestRepoHotBudgetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	blob, err := os.ReadFile(filepath.Join("..", "..", "HOTPATH_BUDGET.json"))
	if err != nil {
		t.Fatalf("read committed budget: %v", err)
	}
	budget, err := ParseHotReport(blob)
	if err != nil {
		t.Fatalf("parse committed budget: %v", err)
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	for _, v := range CompareHotBudget(budget, NewRunner(mod).HotReport()) {
		t.Errorf("committed budget stale: %s", v)
	}
}
