package core

import "repro/internal/metrics"

// AttachMetrics binds the Undo policy's counters into reg under the
// "cleanup." prefix and registers the cleanup-restore latency histogram
// observed at each L1 victim restore.
func (p *CleanupSpec) AttachMetrics(reg *metrics.Registry) {
	s := &p.Stats
	reg.BindCounter("cleanup.cleanups", &s.Cleanups)
	reg.BindCounter("cleanup.free_squashes", &s.CleanupFreeSquashes)
	reg.BindCounter("cleanup.invals_l1", &s.InvalidationsL1)
	reg.BindCounter("cleanup.invals_l2", &s.InvalidationsL2)
	reg.BindCounter("cleanup.restores", &s.Restores)
	reg.BindCounter("cleanup.skipped_live", &s.SkippedLive)
	reg.BindCounter("cleanup.skipped_nonspec", &s.SkippedNonSpec)
	reg.BindCounter("cleanup.dropped_inflight", &s.DroppedInflight)
	reg.BindCounter("cleanup.executed_cleaned", &s.ExecutedCleaned)
	reg.BindCounter("cleanup.window_extensions", &s.WindowExtensions)
	reg.BindCounter("cleanup.loads_observed", &s.LoadsObserved)
	p.restoreLat = reg.Histogram("cleanup.restore_latency_cycles")
}
