// Package coherence implements a directory-based MESI protocol for the
// private L1 caches sharing an inclusive L2, plus the paper's GetS-Safe
// transaction (Section 3.5): a read request that succeeds only if it does
// not force a remote M/E -> S downgrade. CleanupSpec issues GetS-Safe for
// speculative loads and falls back to a delayed ordinary GetS once the load
// is unsquashable, so a transient load can never cause an observable
// coherence downgrade in a remote cache.
//
// The directory tracks, per line, the owning core (M/E) or the sharer set
// (S). The actual per-core tag arrays live in internal/cache; callers apply
// the directory's prescribed downgrades/invalidations to those arrays.
// The paper randomizes the directory's indexing along with the L2 to defeat
// directory-conflict attacks (Yan et al., S&P'19); this model keys the
// directory by full line address, which makes such conflicts impossible by
// construction and is noted as the modeling equivalent in DESIGN.md.
package coherence

import (
	"fmt"

	"repro/internal/arch"
)

// Source says where the data for a grant came from.
type Source int

const (
	// SrcMemory means the line came from DRAM (or the shared L2 missed).
	SrcMemory Source = iota
	// SrcShared means the shared L2 supplied the data.
	SrcShared
	// SrcRemote means a remote L1 supplied the data (cache-to-cache).
	SrcRemote
)

func (s Source) String() string {
	switch s {
	case SrcMemory:
		return "memory"
	case SrcShared:
		return "shared"
	case SrcRemote:
		return "remote"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Grant describes the outcome of a directory transaction: the state granted
// to the requester and the remote actions the caller must apply.
type Grant struct {
	// State is the MESI state granted to the requesting core.
	State arch.CohState
	// Downgrades lists remote cores whose copy must go M/E -> S.
	Downgrades []int
	// Invalidates lists remote cores whose copy must be invalidated.
	Invalidates []int
	// Source is where the data is supplied from.
	Source Source
	// RemoteOwned reports that the line was in a remote M/E before this
	// request — the condition that makes a speculative GetS unsafe.
	RemoteOwned bool
}

type entry struct {
	owner   int    // core holding E/M, -1 if none
	sharers uint64 // bitmask of cores holding S
	dirty   bool   // owner's copy is Modified (for writeback accounting)
}

// Stats counts directory transactions.
type Stats struct {
	GetS         uint64
	GetSSafe     uint64
	GetSSafeFail uint64
	GetX         uint64
	Downgrades   uint64
	Invalidates  uint64
	Writebacks   uint64
	Flushes      uint64
}

// Directory is the MESI directory.
type Directory struct {
	cores   int
	entries map[arch.LineAddr]*entry

	Stats Stats
}

// NewDirectory creates a directory for cores cores (max 64).
func NewDirectory(cores int) *Directory {
	if cores <= 0 || cores > 64 {
		//simlint:allow errdiscipline -- construction-time core-count validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("coherence: bad core count %d", cores))
	}
	return &Directory{cores: cores, entries: make(map[arch.LineAddr]*entry)}
}

// Cores returns the number of cores the directory tracks.
func (d *Directory) Cores() int { return d.cores }

func (d *Directory) get(l arch.LineAddr) *entry {
	e, ok := d.entries[l]
	if !ok {
		//simlint:allow hotalloc -- one directory entry per tracked line, allocated on first reference and deleted on last eviction; amortized across the line's lifetime
		e = &entry{owner: -1}
		d.entries[l] = e
	}
	return e
}

func (d *Directory) checkCore(core int) {
	if core < 0 || core >= d.cores {
		//simlint:allow errdiscipline,hotalloc -- protocol invariant: an out-of-range core id means the simulator state is already corrupt; the Sprintf runs only on that terminal panic path
		panic(fmt.Sprintf("coherence: core %d out of range [0,%d)", core, d.cores))
	}
}

// State returns the directory's view of core's copy of l.
func (d *Directory) State(core int, l arch.LineAddr) arch.CohState {
	d.checkCore(core)
	e, ok := d.entries[l]
	if !ok {
		return arch.Invalid
	}
	if e.owner == core {
		if e.dirty {
			return arch.Modified
		}
		return arch.Exclusive
	}
	if e.sharers&(1<<uint(core)) != 0 {
		return arch.Shared
	}
	return arch.Invalid
}

// RemoteOwner returns the core (other than asker) holding l in M/E, or -1.
func (d *Directory) RemoteOwner(asker int, l arch.LineAddr) int {
	if e, ok := d.entries[l]; ok && e.owner >= 0 && e.owner != asker {
		return e.owner
	}
	return -1
}

// GetS is an ordinary read request: the requester gets S (or E if no other
// copy exists); a remote M/E owner is downgraded to S.
func (d *Directory) GetS(core int, l arch.LineAddr) Grant {
	d.checkCore(core)
	d.Stats.GetS++
	return d.getS(core, l)
}

func (d *Directory) getS(core int, l arch.LineAddr) Grant {
	e := d.get(l)
	bit := uint64(1) << uint(core)
	switch {
	case e.owner == core:
		// Already owned locally; nothing to do.
		st := arch.Exclusive
		if e.dirty {
			st = arch.Modified
		}
		return Grant{State: st, Source: SrcShared}
	case e.owner >= 0:
		// Remote owner: downgrade to S, both become sharers.
		g := Grant{
			State: arch.Shared,
			//simlint:allow hotalloc -- one-element downgrade list per remote-owned GetS; bounded by the (rare) cross-core sharing event, not per cycle
			Downgrades:  []int{e.owner},
			Source:      SrcRemote,
			RemoteOwned: true,
		}
		d.Stats.Downgrades++
		if e.dirty {
			d.Stats.Writebacks++ // owner writes back on downgrade
		}
		e.sharers = (1 << uint(e.owner)) | bit
		e.owner = -1
		e.dirty = false
		return g
	case e.sharers != 0:
		e.sharers |= bit
		return Grant{State: arch.Shared, Source: SrcShared}
	default:
		// Sole copy: grant Exclusive.
		e.owner = core
		return Grant{State: arch.Exclusive, Source: SrcMemory}
	}
}

// GetSSafe is the paper's safe read: identical to GetS unless it would
// downgrade a remote M/E owner, in which case it fails with no state change
// and the caller must retry with GetS once the load is unsquashable.
func (d *Directory) GetSSafe(core int, l arch.LineAddr) (Grant, bool) {
	d.checkCore(core)
	d.Stats.GetSSafe++
	if d.RemoteOwner(core, l) >= 0 {
		d.Stats.GetSSafeFail++
		return Grant{RemoteOwned: true}, false
	}
	return d.getS(core, l), true
}

// GetX is a write (RFO) request: all other copies are invalidated and the
// requester gets M.
func (d *Directory) GetX(core int, l arch.LineAddr) Grant {
	d.checkCore(core)
	d.Stats.GetX++
	e := d.get(l)
	g := Grant{State: arch.Modified}
	switch {
	case e.owner == core:
		g.Source = SrcShared
	case e.owner >= 0:
		//simlint:allow hotalloc -- invalidation fan-out per GetX is bounded by the core count; GetX events are store misses, not per cycle
		g.Invalidates = append(g.Invalidates, e.owner)
		g.Source = SrcRemote
		g.RemoteOwned = true
		if e.dirty {
			d.Stats.Writebacks++
		}
	default:
		g.Source = SrcShared
		for c := 0; c < d.cores; c++ {
			if c != core && e.sharers&(1<<uint(c)) != 0 {
				//simlint:allow hotalloc -- invalidation fan-out per GetX is bounded by the core count; GetX events are store misses, not per cycle
				g.Invalidates = append(g.Invalidates, c)
			}
		}
	}
	d.Stats.Invalidates += uint64(len(g.Invalidates))
	e.owner = core
	e.dirty = true
	e.sharers = 0
	return g
}

// Evict tells the directory core dropped its copy of l (clean eviction or
// writeback; writebacks are counted when dirty is true).
func (d *Directory) Evict(core int, l arch.LineAddr, dirty bool) {
	d.checkCore(core)
	e, ok := d.entries[l]
	if !ok {
		return
	}
	if e.owner == core {
		if dirty || e.dirty {
			d.Stats.Writebacks++
		}
		e.owner = -1
		e.dirty = false
	}
	e.sharers &^= 1 << uint(core)
	if e.owner < 0 && e.sharers == 0 {
		delete(d.entries, l)
	}
}

// Flush implements clflush's coherence action: every copy of l anywhere is
// invalidated. It returns the cores that held a copy. CleanupSpec delays
// the *execution* of a transient clflush until commit (Section 3.5,
// Table 2); the delay lives in the CPU model — by the time Flush is called
// the instruction is non-speculative.
func (d *Directory) Flush(l arch.LineAddr) []int {
	e, ok := d.entries[l]
	if !ok {
		return nil
	}
	var holders []int
	if e.owner >= 0 {
		//simlint:allow hotalloc -- holder list is bounded by the core count and built once per clflush, which executes only at commit
		holders = append(holders, e.owner)
		if e.dirty {
			d.Stats.Writebacks++
		}
	}
	for c := 0; c < d.cores; c++ {
		if e.sharers&(1<<uint(c)) != 0 {
			//simlint:allow hotalloc -- holder list is bounded by the core count and built once per clflush, which executes only at commit
			holders = append(holders, c)
		}
	}
	d.Stats.Invalidates += uint64(len(holders))
	d.Stats.Flushes++
	delete(d.entries, l)
	return holders
}

// Check verifies the protocol invariants over all tracked lines:
// single-writer (an owner excludes all sharers) and sharer masks within the
// configured core count. It returns the first violation found.
func (d *Directory) Check() error {
	//simlint:ordered -- invariant sweep returns an arbitrary first violation; which one is reported never affects simulation state
	for l, e := range d.entries {
		if e.owner >= d.cores {
			return fmt.Errorf("line %v: owner %d out of range", l, e.owner)
		}
		if e.owner >= 0 && e.sharers != 0 {
			return fmt.Errorf("line %v: owner %d coexists with sharers %b", l, e.owner, e.sharers)
		}
		if e.sharers>>uint(d.cores) != 0 {
			return fmt.Errorf("line %v: sharer mask %b exceeds %d cores", l, e.sharers, d.cores)
		}
		if e.owner < 0 && e.sharers == 0 {
			return fmt.Errorf("line %v: empty entry not garbage-collected", l)
		}
		if e.dirty && e.owner < 0 {
			return fmt.Errorf("line %v: dirty without owner", l)
		}
	}
	return nil
}

// Lines returns the number of tracked lines (tests only).
func (d *Directory) Lines() int { return len(d.entries) }
