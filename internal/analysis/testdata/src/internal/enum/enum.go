// Package enum is the enumexhaustive analyzer's golden input.
package enum

// Color is an iota-declared enum with a cardinality sentinel.
type Color int

const (
	Red Color = iota
	Green
	Blue
	numColors // sentinel: excluded from membership by naming convention
)

// Cyan aliases Blue; coverage is counted by value, so Blue covers both.
const Cyan = Blue

// Bad misses Blue and declares no default.
func Bad(c Color) string {
	switch c { // want `switch over Color does not cover Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// GoodDefault opts out of exhaustiveness with an explicit default.
func GoodDefault(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

// GoodFull covers every member (Cyan via Blue's value).
func GoodFull(c Color) string {
	switch c {
	case Red, Green:
		return "warm"
	case Blue:
		return "cool"
	}
	return "?"
}

// GoodNonConstant compares against a runtime value: no coverage claim.
func GoodNonConstant(c, other Color) bool {
	switch c {
	case other:
		return true
	}
	return false
}
