// Package stats provides the counters, derived metrics, and table/series
// formatting shared by the experiment harness, the paperbench command, and
// the benchmark suite.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so a single zero does not collapse the
// mean; callers should not normally pass zeros. Use GeomeanClamped when the
// caller needs to know whether clamping happened (a clamped entry means a
// pathological cell is being averaged away).
func Geomean(xs []float64) float64 {
	g, _ := GeomeanClamped(xs)
	return g
}

// GeomeanClamped returns the geometric mean of xs and the number of
// non-positive entries that had to be clamped to compute it. A non-zero
// clamp count means the mean is not trustworthy as-is: some cell produced a
// zero or negative value (a stalled run, a division by zero upstream) and
// callers should surface it rather than hide it in the average.
func GeomeanClamped(xs []float64) (geomean float64, clamped int) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
			clamped++
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), clamped
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Slowdown converts a normalized execution time into a percentage slowdown
// (1.051 -> 5.1).
func Slowdown(normalized float64) float64 { return (normalized - 1) * 100 }

// Table accumulates rows of strings and renders them as an aligned,
// monospace table. It is deliberately minimal: the harness prints tables to
// stdout and to EXPERIMENTS.md.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Cells beyond the header width are kept and get
// best-effort alignment.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell is formatted with fmt.Sprintf from
// (format, value) alternation handled by the caller; this is a convenience
// for the common "name + numbers" shape.
func (t *Table) AddRowf(name string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, name)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.2f", v))
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// MarshalJSON serializes the table as {title, header, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.header, t.rows})
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV: the header row followed by the
// data rows. The title is not included — callers that concatenate several
// tables into one file (paperbench -csv) prefix their own `# title`
// comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.header)
	for _, row := range t.rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Series is a named sequence of (label, value) points — the textual
// equivalent of one bar-chart series in the paper's figures.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Bars renders the series as labeled ASCII bars scaled to maxWidth columns.
func (s *Series) Bars(maxWidth int) string {
	var b strings.Builder
	if s.Name != "" {
		b.WriteString(s.Name)
		b.WriteByte('\n')
	}
	maxLabel := 0
	maxVal := 0.0
	for i, l := range s.Labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if s.Values[i] > maxVal {
			maxVal = s.Values[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, l := range s.Labels {
		n := int(math.Round(s.Values[i] / maxVal * float64(maxWidth)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s %8.3f %s\n", maxLabel, l, s.Values[i], strings.Repeat("#", n))
	}
	return b.String()
}

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a one-line unicode block graph scaled to the
// series' own [min, max] range (a flat series renders as all-low blocks).
// It is the phase-plot primitive of the simscope inspector.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; used to print maps
// deterministically.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
