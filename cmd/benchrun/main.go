// Command benchrun records a perf baseline: it executes the repository's
// core-loop benchmarks (the substrate microbenchmarks in bench_test.go)
// through `go test -bench` and writes the parsed numbers — ops/sec,
// ns/op, allocs/op, plus any ReportMetric extras — as a JSON baseline
// file future PRs can diff against.
//
//	benchrun -out BENCH_PR6.json
//	benchrun -bench 'BenchmarkSimulatorThroughput$' -benchtime 1s -out -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchrun"
)

// defaultPattern selects the substrate microbenchmarks — the hot loops
// every simulation runs through — rather than the table/figure
// regeneration benchmarks, whose runtimes are experiment-shaped.
const defaultPattern = "^(BenchmarkCacheLookup|BenchmarkCEASEREncrypt|BenchmarkPredictor|BenchmarkSimulatorThroughput)$"

func main() {
	var (
		dir       = flag.String("dir", ".", "package directory containing bench_test.go")
		pattern   = flag.String("bench", defaultPattern, "benchmark selection regexp")
		benchTime = flag.String("benchtime", "0.3s", "per-benchmark measuring time")
		out       = flag.String("out", "BENCH_PR6.json", `baseline file ("-" = stdout)`)
	)
	flag.Parse()

	opts := benchrun.Options{Dir: *dir, Pattern: *pattern, BenchTime: *benchTime}
	fmt.Fprintf(os.Stderr, "benchrun: running %s (benchtime %s)\n", *pattern, *benchTime)
	results, err := benchrun.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "benchrun: %-32s %12.0f ops/s %10.0f allocs/op\n", r.Name, r.OpsPerSec, r.AllocsPerOp)
	}

	baseline := benchrun.NewBaseline(opts, results, time.Now())
	data, err := json.MarshalIndent(baseline, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchrun: wrote", *out)
}
