package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFsck damages a warm cache in every way Fsck classifies — a flipped
// byte, a misfiled entry, an orphaned temp file — and checks the scan
// finds exactly that damage, prune removes it, and a re-scan comes back
// clean.
func TestFsck(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()[:4]
	eng := NewEngine()
	eng.Workers = 1
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	if n := len(Failed(eng.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed in setup run", n)
	}

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.OK != len(jobs) || rep.Scanned != len(jobs) {
		t.Fatalf("fresh cache not clean: %s", rep)
	}
	if !rep.ManifestOK || rep.ManifestRecords != len(jobs) || rep.ManifestDropped != 0 {
		t.Fatalf("manifest misread: %s", rep)
	}

	// Damage 1: flip one byte inside the first entry's result payload.
	k0 := mustKey(t, jobs[0])
	p0 := filepath.Join(dir, k0[:2], k0+".json")
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(data), `"cycles"`)
	if i < 0 {
		t.Fatalf("no cycles field in entry %s", p0)
	}
	// Change one digit of the cycle count: still valid JSON, wrong data.
	for j := i; j < len(data); j++ {
		if data[j] >= '0' && data[j] <= '9' {
			if data[j] == '9' {
				data[j] = '8'
			} else {
				data[j] = '9'
			}
			break
		}
	}
	if err := os.WriteFile(p0, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Damage 2: refile the second entry under the wrong key.
	k1 := mustKey(t, jobs[1])
	p1 := filepath.Join(dir, k1[:2], k1+".json")
	wrong := filepath.Join(dir, k1[:2], "0000000000000000.json")
	if err := os.Rename(p1, wrong); err != nil {
		t.Fatal(err)
	}

	// Damage 3: an orphaned temp file from an interrupted atomic write.
	orphan := filepath.Join(dir, k0[:2], "."+k0+".tmp-12345")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed the damage")
	}
	if len(rep.Corrupt) != 2 {
		t.Fatalf("corrupt = %+v, want the flipped and the misfiled entry", rep.Corrupt)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0].Path != orphan {
		t.Fatalf("orphans = %+v", rep.Orphans)
	}
	reasons := map[string]string{}
	for _, f := range rep.Corrupt {
		reasons[f.Path] = f.Reason
	}
	if !strings.Contains(reasons[p0], "checksum") {
		t.Fatalf("flipped entry classified as %q", reasons[p0])
	}
	if !strings.Contains(reasons[wrong], "misfiled") {
		t.Fatalf("misfiled entry classified as %q", reasons[wrong])
	}
	if rep.OK != len(jobs)-2 {
		t.Fatalf("ok = %d, want the %d untouched entries", rep.OK, len(jobs)-2)
	}

	// Prune removes exactly the damage; a re-scan is clean and the
	// surviving entries are untouched.
	rep, err = Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pruned) != 3 {
		t.Fatalf("pruned %d files, want 3: %v", len(rep.Pruned), rep.Pruned)
	}
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.OK != len(jobs)-2 {
		t.Fatalf("cache dirty after prune: %s", rep)
	}

	// The pruned cells simply re-simulate on the next run.
	again := NewEngine()
	again.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(Failed(again.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed after prune", n)
	}
	if got := again.Simulations(); got != 2 {
		t.Fatalf("post-prune run simulated %d cells, want the 2 pruned ones", got)
	}
}
