// Package metrics is the simulator's observability substrate: a registry of
// named counters, gauges, and log2-bucketed histograms that the core, the
// memory hierarchy, and the security policies register into, an interval
// sampler that snapshots the registry on the core's cycle loop, and
// exporters for the resulting time series (CSV, JSONL) and for Chrome
// trace-event JSON loadable in Perfetto.
//
// The design constraint is that instrumentation must cost nothing on the
// simulator's hot path. Three mechanisms keep it that way:
//
//   - Counter increments are plain uint64 additions with no indirection:
//     either a Counter owned by the registry (c.Inc()) or an existing
//     struct field bound by pointer (BindCounter), so packages keep their
//     `stats.Field++` hot path untouched and the registry reads the field
//     only at snapshot time.
//   - Histogram.Observe is a bounded-array bucket increment (bits.Len64).
//   - An unattached registry is a nil pointer: every instrumentation site
//     is behind one nil check, and Config.SampleEvery == 0 never builds a
//     sampler at all.
//
// The registry is deliberately not safe for concurrent use — the simulator
// is single-threaded — which is what allows atomic-free counters. Campaign
// workers each own a private registry.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Counter is a monotonically increasing event count owned by a registry.
// The zero value is usable but unregistered; obtain one via
// Registry.Counter so it shows up in snapshots.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram is a log2-bucketed histogram of uint64 observations: bucket 0
// counts zeros, bucket i (i >= 1) counts values in [2^(i-1), 2^i - 1].
// Observe is allocation-free.
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [65]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Bucket is one non-empty histogram bucket: Count observations fell in
// [Lo, Hi].
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			b.Hi = 1<<i - 1
		}
		out = append(out, b)
	}
	return out
}

// Snapshot returns a copyable view of the histogram for export.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Buckets: h.Buckets(),
	}
}

// String renders the histogram as labeled ASCII bars.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.1f min=%d max=%d\n", h.count, h.Mean(), h.min, h.max)
	buckets := h.Buckets()
	var peak uint64
	for _, bk := range buckets {
		if bk.Count > peak {
			peak = bk.Count
		}
	}
	for _, bk := range buckets {
		width := int(math.Round(float64(bk.Count) / float64(peak) * 40))
		fmt.Fprintf(&b, "  [%8d, %8d] %8d %s\n", bk.Lo, bk.Hi, bk.Count, strings.Repeat("#", width))
	}
	return b.String()
}

// HistSnapshot is a histogram's exportable state.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// entry is one registered metric.
type entry struct {
	name    string
	kind    Kind
	counter *Counter      // owned counter
	source  func() uint64 // bound counter (reads an external field)
	gauge   func() float64
	hist    *Histogram
}

// Registry is the named-metric directory. The zero value is unusable; call
// NewRegistry. Not safe for concurrent use (the simulator is
// single-threaded).
type Registry struct {
	entries []entry
	byName  map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) add(e entry) {
	if _, dup := r.byName[e.name]; dup {
		//simlint:allow errdiscipline -- registration-time invariant: duplicate metric names are programmer errors at AttachMetrics time, before any cell runs
		panic("metrics: duplicate registration of " + e.name)
	}
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers and returns a new owned counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, kind: KindCounter, counter: c})
	return c
}

// BindCounter registers an existing uint64 field as a counter. The caller
// keeps incrementing the field directly (zero instrumentation cost); the
// registry reads it through the pointer at snapshot time. The pointer must
// stay valid for the registry's lifetime — binding fields of a struct
// *value* embedded in a long-lived owner (cpu.Machine.Stats and friends)
// satisfies that even across `stats = Stats{}` resets.
func (r *Registry) BindCounter(name string, p *uint64) {
	r.add(entry{name: name, kind: KindCounter, source: func() uint64 { return *p }})
}

// CounterFunc registers a counter whose value is computed on demand (for
// counters that are derived rather than stored, e.g. a cycle count held as
// a difference of two bases).
func (r *Registry) CounterFunc(name string, f func() uint64) {
	r.add(entry{name: name, kind: KindCounter, source: f})
}

// GaugeFunc registers an instantaneous value sampled on demand (queue
// occupancy, in-flight transactions).
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.add(entry{name: name, kind: KindGauge, gauge: f})
}

// Histogram registers and returns a new log2-bucketed histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.add(entry{name: name, kind: KindHistogram, hist: h})
	return h
}

// Names returns all registered names of the given kind, sorted.
func (r *Registry) Names(kind Kind) []string {
	var out []string
	for _, e := range r.entries {
		if e.kind == kind {
			out = append(out, e.name)
		}
	}
	sort.Strings(out)
	return out
}

// CounterValue returns the current value of the named counter.
func (r *Registry) CounterValue(name string) (uint64, bool) {
	i, ok := r.byName[name]
	if !ok || r.entries[i].kind != KindCounter {
		return 0, false
	}
	return counterValue(r.entries[i]), true
}

// HistogramByName returns the named histogram, if registered.
func (r *Registry) HistogramByName(name string) (*Histogram, bool) {
	i, ok := r.byName[name]
	if !ok || r.entries[i].kind != KindHistogram {
		return nil, false
	}
	return r.entries[i].hist, true
}

func counterValue(e entry) uint64 {
	if e.counter != nil {
		return e.counter.Value()
	}
	return e.source()
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	for _, e := range r.entries {
		switch e.kind {
		case KindCounter:
			s.Counters[e.name] = counterValue(e)
		case KindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[e.name] = e.gauge()
		case KindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistSnapshot)
			}
			s.Histograms[e.name] = e.hist.Snapshot()
		}
	}
	return s
}

// counterSnapshot fills dst (cleared first) with every counter value —
// the sampler's allocation-light inner loop reuses one scratch map.
func (r *Registry) counterSnapshot(dst map[string]uint64) {
	for _, e := range r.entries {
		if e.kind == KindCounter {
			dst[e.name] = counterValue(e)
		}
	}
}

func (r *Registry) hasKind(k Kind) bool {
	for _, e := range r.entries {
		if e.kind == k {
			return true
		}
	}
	return false
}

func (r *Registry) gaugeSnapshot(dst map[string]float64) {
	for _, e := range r.entries {
		if e.kind == KindGauge {
			dst[e.name] = e.gauge()
		}
	}
}

// Collector bundles the observable artifacts of one instrumented run: the
// registry (always) and the interval sampler (when sampling was enabled).
// sim.RunWorkload fills the zero value handed to it via sim.Config.Metrics.
type Collector struct {
	Registry *Registry
	Sampler  *Sampler
}

// Samples returns the recorded time series (nil when sampling was off).
func (c *Collector) Samples() []Sample {
	if c == nil || c.Sampler == nil {
		return nil
	}
	return c.Sampler.Samples()
}
