package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/xrand"
	"repro/sim"
)

// Engine executes jobs with memoization, optional disk caching, bounded
// parallelism, and retry-on-failure. The zero value is not ready to use;
// call NewEngine.
//
// Result lookup order for a job: in-memory memo → disk cache → simulate.
// Fresh results are written through to both layers, so a later engine (or
// a later process) pointed at the same cache directory starts warm.
//
// Failure handling is layered: ordinary errors are retried under a
// bounded cycle budget with deterministic exponential backoff; worker
// panics are recovered into quarantined results with a diagnostic dump
// instead of killing the pool; a cache directory that stops accepting
// writes degrades the engine to cache-bypass mode rather than spamming
// errors or failing jobs whose simulations succeeded.
type Engine struct {
	// Cache is the optional disk layer (nil → memory-only engine).
	Cache *Cache
	// Workers bounds the pool for Run (0 → runtime.GOMAXPROCS(0)). Each
	// job is an independent CPU-bound sim.RunWorkload, so one worker per
	// processor is the sweet spot.
	Workers int
	// Retries is how many times a failed job is re-attempted (default 1).
	Retries int
	// RetryMaxCycles bounds Config.MaxCycles on retry attempts so a
	// pathologically stalled configuration times out instead of burning a
	// worker for the 500M-cycle default (default 50M). A job whose own
	// MaxCycles is already tighter keeps its own bound.
	RetryMaxCycles uint64
	// Backoff is the base delay before retry attempt n: Backoff<<(n-1)
	// plus up to 100% jitter, derived deterministically from the job key
	// so reruns back off identically regardless of worker scheduling
	// (default 50ms; 0 disables).
	Backoff time.Duration
	// Manifest, when non-nil, receives per-job status updates; each
	// completion is journaled with a single appended line.
	Manifest *Manifest
	// Reporter, when non-nil, streams completed/total + ETA as jobs
	// finish.
	Reporter *Reporter
	// Faults, when non-nil, is the chaos-test fault schedule. Each job
	// derives a child injector keyed by its cache key, so which worker
	// picks up a job never changes the faults it sees.
	Faults *faultinject.Injector
	// Trace, when non-nil, emits one span tree per job — lease →
	// cache-probe → simulate (per attempt) → verify → journal-append —
	// into its obs.Sink. Span identities are content-derived from the
	// job's cache key, so the canonical span stream is byte-identical
	// across worker counts; a nil tracer costs one nil check per stage
	// and zero allocations (pinned by the obs benchmarks).
	Trace *obs.Tracer

	mu    sync.Mutex
	memo  map[string]memoVal
	cells map[CellKind]CellFunc
	// openSpans parks each in-flight job's open root span under its cache
	// key until the driver (Run / RunJob) collects it with takeSpan. The
	// side channel exists so runJob can return a JobResult that carries no
	// wall-clock-derived data at all — spans embed wall stamps, and a
	// result free of them stays usable in hash/identity derivations
	// downstream (fabric completion entries) without tripping detertaint.
	openSpans map[string]*obs.Span

	sims atomic.Int64

	cacheFails atomic.Int32 // consecutive cache-write failures
	cacheDown  atomic.Bool  // degraded to cache-bypass

	// sleep is the backoff clock, replaceable in tests (nil = time.Sleep).
	sleep func(time.Duration)
}

// cacheFailThreshold is how many consecutive write failures flip the
// engine into cache-bypass mode.
const cacheFailThreshold = 3

// memoVal is one memoized cell outcome: the simulation measurement plus a
// custom cell kind's opaque payload.
type memoVal struct {
	res sim.Result
	aux json.RawMessage
}

// CellFunc executes one custom-kind cell. It must be deterministic in the
// job's identity fields (Workload, Config, Kind, Cell) — the engine caches
// its outcome under the job's content-addressed key, and a later run (or a
// parallel worker) may serve the cached copy instead of calling it again.
// The sim.Result half feeds the shared reporting surfaces (manifest rows,
// status tables); kind-specific output goes in the returned JSON payload.
type CellFunc func(job Job) (sim.Result, json.RawMessage, error)

// NewEngine returns a memory-only engine with default pool sizing; callers
// attach Cache / Manifest / Reporter as needed.
func NewEngine() *Engine {
	return &Engine{
		Retries:        1,
		RetryMaxCycles: 50_000_000,
		Backoff:        50 * time.Millisecond,
		memo:           make(map[string]memoVal),
	}
}

// RegisterCell installs the executor for a custom cell kind. Registering
// KindSim or a kind twice is a programmer error surfaced at job execution
// time, not here: jobs of an unregistered kind fail with a descriptive
// error rather than panicking a worker.
func (e *Engine) RegisterCell(kind CellKind, fn CellFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cells == nil {
		e.cells = make(map[CellKind]CellFunc)
	}
	e.cells[kind] = fn
}

// cellFunc looks up the registered executor for kind.
func (e *Engine) cellFunc(kind CellKind) (CellFunc, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fn, ok := e.cells[kind]
	return fn, ok
}

// Simulations returns how many actual simulator invocations the engine
// has performed (cache and memo hits excluded, retries included) — the
// number the cache-determinism tests pin to zero on a warm rerun.
func (e *Engine) Simulations() int64 { return e.sims.Load() }

// CacheBypassed reports whether repeated write failures degraded the
// engine to cache-bypass mode.
func (e *Engine) CacheBypassed() bool { return e.cacheDown.Load() }

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) lookup(key string) (memoVal, bool) {
	e.mu.Lock()
	val, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return val, true
	}
	if e.Cache != nil && !e.cacheDown.Load() {
		if entry, ok := e.Cache.Get(key); ok {
			val = memoVal{res: entry.Result, aux: entry.Aux}
			e.mu.Lock()
			e.memo[key] = val
			e.mu.Unlock()
			return val, true
		}
	}
	return memoVal{}, false
}

func (e *Engine) store(job Job, key string, val memoVal) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memo[key] = val
	if e.Cache == nil || e.cacheDown.Load() {
		return nil
	}
	err := e.Cache.Put(job, val.res, val.aux)
	if err == nil {
		e.cacheFails.Store(0)
		return nil
	}
	// Graceful degradation: an unwritable cache dir (disk full, perms
	// yanked mid-run) must not fail jobs whose simulations succeeded.
	// After a few consecutive failures, stop touching the cache at all.
	if e.cacheFails.Add(1) >= cacheFailThreshold {
		if e.cacheDown.CompareAndSwap(false, true) && e.Reporter != nil {
			e.Reporter.Warn("cache keeps failing writes; bypassing it for the rest of the run (results stay in memory)")
		}
	}
	return err
}

// PanicError is a recovered worker panic: an engine or simulator-model
// fault, as opposed to a cell that merely returned an error.
type PanicError struct {
	Value string // the panic value, stringified
	Stack string // the goroutine stack at recovery
}

// Error renders the panic value (the stack lives in the quarantine dump).
func (e *PanicError) Error() string { return "worker panic: " + e.Value }

// runAttempt executes one cell attempt behind a panic isolation boundary:
// a panicking worker comes back as a *PanicError instead of tearing down
// the whole pool. Custom cell kinds dispatch to their registered CellFunc;
// the default kind is one sim.RunWorkload invocation.
func (e *Engine) runAttempt(job Job, cfg sim.Config, faults *faultinject.Injector) (val memoVal, err error) {
	defer func() {
		//simlint:allow errdiscipline -- panic isolation boundary: a worker panic becomes a quarantined JobResult with a diagnostic dump, the pool survives
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	switch faults.Check(faultinject.SiteWorkerExec) {
	case faultinject.KindError:
		return memoVal{}, fmt.Errorf("campaign: worker executing %s: %w", job, faultinject.ErrInjected)
	case faultinject.KindPanic:
		//simlint:allow errdiscipline -- deliberate injected fault: the chaos suite proves this panic is recovered and quarantined, never escapes the pool
		panic(fmt.Sprintf("faultinject: injected worker panic for %s", job))
	default:
		// KindNone and kinds scheduled for other sites: run normally.
	}
	if job.Kind != KindSim {
		fn, ok := e.cellFunc(job.Kind)
		if !ok {
			return memoVal{}, fmt.Errorf("campaign: no executor registered for cell kind %q (job %s)", job.Kind, job)
		}
		run := job
		run.Config = cfg
		res, aux, err := fn(run)
		return memoVal{res: res, aux: aux}, err
	}
	res, err := sim.RunWorkload(job.Workload, cfg)
	return memoVal{res: res}, err
}

// Backoff returns the delay before retry attempt n (1-based) of the
// operation keyed by key: exponential in the attempt with up to 100%
// jitter, all derived from (key, attempt) through xrand — so two runs of
// the same campaign back off identically no matter how workers are
// scheduled. The fabric worker reuses it for lease-wait and heartbeat
// retry pacing, keyed by the worker id, so a fleet of workers hammering
// one coordinator desynchronizes deterministically.
func Backoff(key string, attempt int, base time.Duration) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	const maxBackoff = 2 * time.Second
	d := base << uint(attempt-1)
	if d > maxBackoff {
		d = maxBackoff
	}
	r := xrand.New(xrand.Hash64(keySeed(key) ^ uint64(attempt)))
	return d + time.Duration(r.Uint64n(uint64(d)))
}

// keySeed folds a cache key into an xrand seed (FNV-1a 64).
func keySeed(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// pause sleeps through the engine's clock (tests stub it out).
func (e *Engine) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if e.sleep != nil {
		e.sleep(d)
		return
	}
	time.Sleep(d)
}

// diagRingCap is how many trailing trace events each attempt retains for
// a potential quarantine dump.
const diagRingCap = 256

// quarantineDirName is the dump directory under the cache root.
const quarantineDirName = "quarantine"

// QuarantineDir returns the quarantine dump directory for a cache root.
func QuarantineDir(cacheDir string) string {
	return filepath.Join(cacheDir, quarantineDirName)
}

// QuarantineDump is the diagnostic record written for a recovered panic:
// enough to reproduce (job + config), see where the simulation was (last
// trace events), and what it had counted (partial stats) — without
// rerunning anything. `campaign replay` loads one of these and re-runs
// the job under a full-depth tracer (see Replay).
type QuarantineDump struct {
	Job     Job               `json:"job"`
	Key     string            `json:"key"`
	Panic   string            `json:"panic"`
	Stack   string            `json:"stack"`
	Trace   []trace.Event     `json:"trace,omitempty"`
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// writeQuarantineDump persists the dump, returning its path ("" if no
// cache dir is attached or the write failed — quarantine still proceeds).
func (e *Engine) writeQuarantineDump(job Job, key string, pe *PanicError, ring *trace.Ring, col *sim.Metrics) string {
	if e.Cache == nil {
		return ""
	}
	dump := QuarantineDump{Job: job, Key: key, Panic: pe.Value, Stack: pe.Stack}
	if ring != nil {
		dump.Trace = ring.Events()
	}
	if col != nil && col.Registry != nil {
		dump.Metrics = col.Registry.Snapshot().Counters
	}
	dir := QuarantineDir(e.Cache.Dir())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	data, err := json.MarshalIndent(dump, "", " ")
	if err != nil {
		return ""
	}
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return ""
	}
	return path
}

// RunOne executes a single job through the memo and cache, returning
// whether the result was served from a cache layer. Failures are retried
// per the engine's retry policy before being returned.
func (e *Engine) RunOne(job Job) (res sim.Result, cached bool, err error) {
	r := e.RunJob(job)
	return r.Result, r.Cached, r.Err
}

// stashSpan parks an in-flight job's open root span for the driver.
func (e *Engine) stashSpan(key string, sp *obs.Span) {
	if sp == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.openSpans == nil {
		e.openSpans = make(map[string]*obs.Span)
	}
	e.openSpans[key] = sp
}

// takeSpan collects (and forgets) the open root span runJob parked for
// key. Nil when the engine has no tracer, or the job never keyed.
func (e *Engine) takeSpan(key string) *obs.Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	sp := e.openSpans[key]
	delete(e.openSpans, key)
	return sp
}

// RunJob executes a single job through the memo and cache and returns the
// full JobResult — including the custom-kind Aux payload, quarantine
// state, and attempt count that RunOne flattens away. The fabric worker
// runs leased cells through this entry point so a completion message can
// carry everything the coordinator journals.
//
// The returned result carries no Elapsed measurement and no span handle:
// keeping wall-clock-derived values out of this value means everything
// built from it — fabric completion messages, cache entries rebuilt from
// Result/Aux — stays free of wall taint (detertaint tracks this
// transitively). Batch callers that want per-job wall cost stamp it
// themselves, as Run does.
func (e *Engine) RunJob(job Job) JobResult {
	r := e.runJob(job)
	e.takeSpan(r.Key).End()
	return r
}

// runJob executes one job. The job's root trace span is deliberately NOT
// part of the return value — spans carry wall-clock stamps, and a tainted
// span riding in (or alongside) the result would poison every downstream
// identity derivation for the taint analysis. It is parked under the
// job's key instead; the driver collects it with takeSpan, appends its
// journal stage, and ends it.
func (e *Engine) runJob(job Job) JobResult {
	key, kerr := job.Key()
	if kerr != nil {
		return JobResult{Job: job, Err: kerr}
	}
	// One trace per cell, rooted at the content key: the span tree below
	// (lease → cache-probe → simulate* → verify) is identical across
	// worker counts because every identity derives from key and stage
	// name, never from scheduling. The root is left open here — Run (or
	// RunOne) ends it after the journal-append stage. The e.Trace != nil
	// guard keeps job.String() off the untraced hot path (it allocates).
	var root *obs.Span
	if e.Trace != nil {
		root = e.Trace.Trace(job.String(), key)
		root.Child("lease").End()
		e.stashSpan(key, root)
	}
	probe := root.Child("cache-probe")
	val, hit := e.lookup(key)
	probe.SetAttr("hit", strconv.FormatBool(hit))
	probe.End()
	if hit {
		return JobResult{Job: job, Key: key, Result: val.res, Aux: val.aux, Cached: true}
	}
	faults := e.Faults.Child(key)
	var (
		err      error
		attempts int
	)
	for attempt := 0; attempt <= e.Retries; attempt++ {
		cfg := job.Config
		// Every fresh simulation runs instrumented so the cached entry
		// carries the full counter snapshot (Result.Metrics). Counter
		// bindings are free on the hot path and no sampler is attached,
		// so this does not slow the job or change its outcome.
		cfg.Metrics = &sim.Metrics{}
		// A small trace ring rides along purely as quarantine evidence;
		// it observes, never alters, the simulation.
		ring := trace.NewRing(diagRingCap)
		if cfg.Trace == nil {
			cfg.Trace = ring
		}
		cfg.Faults = faults
		if attempt > 0 {
			if e.RetryMaxCycles > 0 {
				// Retry under a tighter cycle budget: a deterministic stall
				// will stall again, and the bounded budget turns it into a
				// prompt per-job timeout instead of a hung worker. A job
				// that brought an even tighter bound of its own keeps it.
				if cfg.MaxCycles == 0 || cfg.MaxCycles > e.RetryMaxCycles {
					cfg.MaxCycles = e.RetryMaxCycles
				}
			}
			e.pause(Backoff(key, attempt, e.Backoff))
		}
		attempts++
		e.sims.Add(1)
		sp := root.Child("simulate")
		if sp != nil {
			// Attr values built only on the traced path: the disabled
			// tracer's hot path must not even format an integer.
			sp.SetAttr("attempt", strconv.Itoa(attempt))
		}
		val, err = e.runAttempt(job, cfg, faults)
		switch {
		case err == nil:
			sp.SetAttr("outcome", "ok")
		case errors.As(err, new(*PanicError)):
			sp.SetAttr("outcome", "panic")
		default:
			sp.SetAttr("outcome", "error")
		}
		sp.End()
		if err == nil {
			break
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			// A panic is an engine/model fault, not a flaky cell: retrying
			// buys nothing and risks a second panic. Quarantine with the
			// evidence instead.
			root.SetAttr("quarantined", "true")
			jr := JobResult{Job: job, Key: key, Attempts: attempts, Err: err, Quarantined: true}
			jr.DumpPath = e.writeQuarantineDump(job, key, pe, ring, cfg.Metrics)
			return jr
		}
	}
	jr := JobResult{Job: job, Key: key, Attempts: attempts}
	if err != nil {
		// Not wrapped with the job name: every consumer (reporter,
		// manifest, CLI failure listing) prints jr.Job alongside.
		jr.Err = err
		return jr
	}
	jr.Result = val.res
	jr.Aux = val.aux
	// "verify" is the write-through stage: the checksummed cache entry is
	// the artifact whose integrity fsck later re-verifies.
	verify := root.Child("verify")
	serr := e.store(job, key, val)
	verify.End()
	if serr != nil {
		// A result that simulated fine but failed to persist is still a
		// usable result; surface the cache problem without failing the job.
		jr.Err = nil
		if e.Reporter != nil {
			e.Reporter.Warn(fmt.Sprintf("cache write failed for %s: %v", job, serr))
		}
	}
	return jr
}

// Run executes jobs on the worker pool and returns their results in job
// order (independent of scheduling), so aggregation over the returned
// slice is deterministic for a fixed grid. The manifest, when attached,
// is reconciled and compacted before execution, journaled line-by-line as
// jobs complete, and compacted again at the end; Run never aborts on
// individual job failures — inspect JobResult.Err/Quarantined (or
// Failed/Quarantined on the returned slice) for the per-cell outcomes.
func (e *Engine) Run(jobs []Job) []JobResult {
	if e.Trace != nil && e.Faults != nil {
		// Fault events land in the same timeline as the engine stages:
		// one instant span per fired fault, keyed on the event's own
		// content (site/kind/hit count), which the schedule fixes
		// deterministically regardless of worker interleaving.
		e.Faults.SetObserver(func(ev faultinject.Event) {
			e.Trace.Instant("fault", ev.String(),
				obs.Attr{K: "site", V: ev.Site.String()},
				obs.Attr{K: "kind", V: ev.Kind.String()},
				obs.Attr{K: "hit", V: strconv.FormatUint(ev.Hit, 10)})
		})
	}
	if e.Manifest != nil {
		e.Manifest.Reconcile(e.Manifest.Grid, jobs)
		_ = e.Manifest.Save()
	}
	if e.Reporter != nil {
		e.Reporter.Start(len(jobs))
	}
	results := make([]JobResult, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < e.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				start := time.Now()
				jr := e.runJob(jobs[i])
				sp := e.takeSpan(jr.Key)
				jr.Elapsed = time.Since(start)
				results[i] = jr
				if e.Manifest != nil {
					jsp := sp.Child("journal-append")
					merr := e.Manifest.Append(jr)
					jsp.End()
					if merr != nil && e.Reporter != nil {
						e.Reporter.Warn(fmt.Sprintf("manifest append failed for %s: %v", jr.Job, merr))
					}
				}
				sp.End()
				if e.Reporter != nil {
					e.Reporter.JobDone(jr)
				}
			}
		}()
	}
	wg.Wait()
	if e.Reporter != nil {
		e.Reporter.Finish()
	}
	if e.Manifest != nil {
		_ = e.Manifest.Save()
	}
	return results
}

// Failed filters the plainly failed (non-quarantined) results out of a
// Run output.
func Failed(results []JobResult) []JobResult {
	var out []JobResult
	for _, r := range results {
		if r.Failed() && !r.Quarantined {
			out = append(out, r)
		}
	}
	return out
}

// Quarantined filters the quarantined results out of a Run output.
func Quarantined(results []JobResult) []JobResult {
	var out []JobResult
	for _, r := range results {
		if r.Quarantined {
			out = append(out, r)
		}
	}
	return out
}
