// Package campaign is the experiment-grid engine behind paperbench and the
// campaign command: it expands a declarative grid of cells (workload ×
// policy × config overrides × seed) into independent jobs, executes them on
// a bounded worker pool, and writes every result through a
// content-addressed on-disk cache so an interrupted, tweaked, or partially
// failed campaign only re-simulates the cells that are actually missing.
//
// The moving parts:
//
//   - Job / Key: one simulation cell and its content-addressed identity
//     (hash of workload + canonicalized resolved sim.Config + schema
//     version). Two jobs with the same key are guaranteed to produce the
//     same sim.Result, so a key is safe to use as a cache address.
//   - Cache: JSON result files under a cache directory, sharded by key
//     prefix, written atomically (temp file + rename).
//   - Manifest: per-job status (pending / done / failed) persisted next to
//     the cache for `campaign status` and resumability.
//   - Engine: the worker pool. Results come back in job order regardless
//     of scheduling, failed jobs are retried once with a bounded
//     Config.MaxCycles instead of panicking, and a Reporter streams
//     completed/total + ETA to stderr.
//   - Grid: the declarative cell grid plus the named grids the CLI
//     exposes, seed-sweep parsing, and mean/geomean aggregation via
//     internal/stats.
//
// internal/experiments.Runner delegates its per-run memoization to an
// Engine, so a paperbench pass and a campaign run share one cache.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/sim"
)

// SchemaVersion is folded into every cache key. Bump it whenever the
// simulator's semantics change in a way that invalidates previously cached
// results (new policy behavior, changed defaults, new Result fields that
// matter downstream).
//
// Version 2: Result carries the final metric-registry snapshot
// (Result.Metrics) and the canonical Config JSON excludes the
// observability hooks (Trace, Metrics, SampleEvery).
//
// Version 3: the MSHR binds its full counter set (allocs, full, squashes
// joined merges and dropped), so cached Result.Metrics snapshots from
// earlier versions are missing keys.
//
// Version 4: cache entries carry a content checksum (Entry.Sum), the
// manifest became an append-only journal (manifest.jsonl), and sim.Config
// gained the keyed WatchdogWindow parameter.
const SchemaVersion = 4

// CellKind names a job's execution kind. The zero value ("") is a plain
// workload simulation, executed by sim.RunWorkload; any other kind is
// dispatched to the CellFunc registered for it on the engine (see
// Engine.RegisterCell). internal/specfuzz registers KindSpecFuzz cells this
// way: a fuzz cell is a first-class campaign cell — keyed, cached,
// journaled, retried, and resumable exactly like a simulation cell.
type CellKind string

// KindSim is the default cell kind: one sim.RunWorkload invocation.
const KindSim CellKind = ""

// Job is one campaign cell: by default a workload run under a fully
// specified configuration, or — when Kind is set — a registered custom
// cell whose kind-specific parameters travel in Cell. Variant is a
// human-readable label for the config override the job came from (empty
// for the grid's base config); it is reporting metadata only and does not
// contribute to the job's identity.
type Job struct {
	Workload string     `json:"workload"`
	Variant  string     `json:"variant,omitempty"`
	Config   sim.Config `json:"config"`
	// Kind selects the cell's executor ("" = workload simulation). It is
	// part of the cell's content-addressed identity.
	Kind CellKind `json:"kind,omitempty"`
	// Cell is the kind-specific cell payload (e.g. a serialized fuzz
	// gadget spec). It is hashed into the cache key byte-for-byte, so two
	// cells with different payloads never share a cache slot.
	Cell json.RawMessage `json:"cell,omitempty"`
}

// Key returns the job's content-addressed identity.
func (j Job) Key() (string, error) { return cellKey(j.Kind, j.Workload, j.Config, j.Cell) }

// String renders the job for progress lines and error messages.
func (j Job) String() string {
	s := j.Workload + "/" + string(j.Config.Resolved().Policy)
	if j.Kind != KindSim {
		s = string(j.Kind) + ":" + s
	}
	if j.Variant != "" {
		s += "/" + j.Variant
	}
	if j.Config.Seed > 1 {
		s += fmt.Sprintf("/seed%d", j.Config.Seed)
	}
	return s
}

// keyRecord is the canonical byte representation hashed into a key. The
// resolved config is embedded as a struct, so every field that influences
// the simulation participates in the hash with a fixed field order; the
// observability hooks (Trace, Metrics, SampleEvery) never change outcomes
// and are excluded — both via their json:"-" tags and by zeroing below, so
// a future tag regression cannot silently fork cache keys. Kind and Cell
// are omitted when empty, so every pre-existing simulation cell keeps the
// key it had before cell kinds existed.
type keyRecord struct {
	Schema   int             `json:"schema"`
	Workload string          `json:"workload"`
	Config   sim.Config      `json:"config"`
	Kind     CellKind        `json:"kind,omitempty"`
	Cell     json.RawMessage `json:"cell,omitempty"`
}

// Key returns the content-addressed cache key for running workload wl
// under cfg: a 128-bit hex digest of the workload name, the fully resolved
// configuration, and the cache schema version. Deriving the key from the
// *resolved* config means two call sites that build the same effective
// configuration through different code paths share a cache slot, and two
// configurations that differ in any simulated parameter (seed, policy,
// randomization overrides, window size, ...) never collide.
func Key(wl string, cfg sim.Config) (string, error) {
	return cellKey(KindSim, wl, cfg, nil)
}

// cellKey is Key generalized over cell kinds: the kind and its payload are
// hashed alongside the workload and resolved config.
func cellKey(kind CellKind, wl string, cfg sim.Config, cell json.RawMessage) (string, error) {
	rc := cfg.Resolved()
	rc.Trace = nil // observation-only; does not affect results
	rc.Metrics = nil
	rc.SampleEvery = 0
	rc.Faults = nil
	blob, err := json.Marshal(keyRecord{Schema: SchemaVersion, Workload: wl, Config: rc, Kind: kind, Cell: cell})
	if err != nil {
		// sim.Config is a plain struct of scalars and pointers today (and
		// Cell is pre-encoded JSON), so this is unreachable — but a future
		// field could make it real, and a bad cell must surface as a
		// failed job, not a dead pool.
		return "", fmt.Errorf("campaign: canonicalizing config for %s: %w", wl, err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16]), nil
}

// JobResult is the outcome of one job execution.
type JobResult struct {
	Job    Job
	Key    string
	Result sim.Result
	// Aux is a custom cell kind's opaque result payload (nil for plain
	// simulation cells); it round-trips through the memo and disk cache
	// next to Result.
	Aux json.RawMessage
	Err error
	Cached   bool // served from the disk cache or in-memory memo
	Attempts int  // 0 for cache hits
	Elapsed  time.Duration
	// Quarantined marks a worker panic (an engine/model fault, not a bad
	// cell config): the panic was recovered, the job was not retried, and
	// a diagnostic dump was written to DumpPath.
	Quarantined bool
	DumpPath    string
}

// Failed reports whether the job ultimately failed (after retries).
// Quarantined jobs also count as failed; use Quarantined to tell "bad
// config" from "engine fault".
func (r JobResult) Failed() bool { return r.Err != nil }
