package policy

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/testprog"
)

func TestDelayPreventsWrongPathAccess(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := testprog.SmallConfig()
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	m := cpu.New(cfg, testprog.WrongPathExecuted(), h, Delay{})
	m.Run(0)
	m.DrainMemory()
	if m.Stats.Squashes == 0 {
		t.Fatal("no squash")
	}
	// The wrong-path load was delayed and never accessed the cache.
	if _, hit := h.L1(0).Probe(testprog.AddrWrong.Line()); hit {
		t.Fatal("delayed policy must not let the wrong-path load touch the cache")
	}
	if m.Stats.LoadDelayStalls == 0 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestDelaySlowerThanNonSecure(t *testing.T) {
	run := func(pol cpu.Policy) uint64 {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = 10_000_000
		h := memsys.New(memsys.DefaultConfig(1))
		m := cpu.New(cfg, testprog.SpecPointerChase(200, 0x20000), h, pol)
		return m.Run(0).Cycles
	}
	base := run(cpu.NonSecure{})
	delayed := run(Delay{})
	if delayed <= base {
		t.Fatalf("delay-all (%d) should be slower than non-secure (%d)", delayed, base)
	}
}

func TestDelayOnMissAllowsHitsBlocksMisses(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := testprog.SmallConfig()
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	m := cpu.New(cfg, testprog.WrongPathExecuted(), h, DelayOnMiss{})
	m.Run(0)
	m.DrainMemory()
	if m.Stats.Squashes == 0 {
		t.Fatal("no squash")
	}
	// The wrong-path load misses the L1 (it is L2-resident), so the
	// filter must have delayed it: no L1 install.
	if _, hit := h.L1(0).Probe(testprog.AddrWrong.Line()); hit {
		t.Fatal("delay-on-miss must block the wrong-path L1 miss")
	}
	if m.Stats.LoadDelayStalls == 0 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestDelayOnMissCheaperThanDelayAll(t *testing.T) {
	run := func(pol cpu.Policy) uint64 {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = 10_000_000
		h := memsys.New(memsys.DefaultConfig(1))
		m := cpu.New(cfg, testprog.SpecPointerChase(200, 0x20000), h, pol)
		return m.Run(0).Cycles
	}
	om := run(DelayOnMiss{})
	all := run(Delay{})
	if om > all {
		t.Fatalf("delay-on-miss (%d) slower than delay-all (%d)", om, all)
	}
}

func TestValuePredictMispredictionRepair(t *testing.T) {
	// The table is empty, so the prediction for the spec load is 0; the
	// actual value is 5. The dependent add consumes the wrong value and
	// must be squashed and recomputed after validation.
	b := isa.NewBuilder("vp-repair")
	b.InitData(0x9000, 1) // slow branch condition
	b.InitData(0x6000, 5) // the value-predicted load's data
	b.Li(3, 0x9000)
	b.Load(4, 3, 0) // ~110 cycles
	b.Br(isa.CondEQ, 4, 0, "skip")
	b.Li(5, 0x6000)
	b.Load(6, 5, 0) // speculative L1 miss: value-predicted as 0
	b.AddI(7, 6, 1) // dependent: must end up 6, not 1
	b.Halt()
	b.Label("skip")
	b.Halt()

	v := NewValuePredict()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	h := memsys.New(memsys.DefaultConfig(1))
	m := cpu.New(cfg, b.Build(), h, v)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if v.Stats.Predictions == 0 {
		t.Fatalf("no predictions made: %+v", v.Stats)
	}
	if v.Stats.Mispredicts == 0 {
		t.Fatalf("expected a value misprediction: %+v", v.Stats)
	}
	if m.Reg(6) != 5 || m.Reg(7) != 6 {
		t.Fatalf("r6=%d r7=%d, want 5 and 6", m.Reg(6), m.Reg(7))
	}
	if m.Stats.ValueMispredicts == 0 {
		t.Fatalf("machine stats: %+v", m.Stats)
	}
}

func TestValuePredictBlocksWrongPathMiss(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := testprog.SmallConfig()
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	m := cpu.New(cfg, testprog.WrongPathExecuted(), h, NewValuePredict())
	m.Run(0)
	m.DrainMemory()
	if m.Stats.Squashes == 0 {
		t.Fatal("no squash")
	}
	// The wrong-path L1 miss was value-predicted, never accessing the
	// cache; its validation never launched because it was squashed first.
	if _, hit := h.L1(0).Probe(testprog.AddrWrong.Line()); hit {
		t.Fatal("value-predict must not let the wrong-path miss touch the cache")
	}
}

func TestValuePredictCorrectPredictionIsCheap(t *testing.T) {
	// A strided loop over cold lines that all hold the same value: the
	// last-value table locks onto 7 after the first commit, and later
	// speculative misses predict correctly and validate cleanly.
	b := isa.NewBuilder("vp-train")
	for i := 0; i < 30; i++ {
		b.InitData(arch.Addr(0x9000+i*64), 7)
	}
	b.Li(1, 30)
	b.Li(2, 0x9000)
	b.Li(9, 0)
	b.Label("loop")
	// Data-dependent always-true branch keeps the next load speculative.
	b.Load(3, 2, 0)
	b.Add(9, 9, 3)
	b.AddI(2, 2, 64)
	b.Br(isa.CondGEU, 3, 0, "cont")
	b.Nop()
	b.Label("cont")
	b.AddI(1, 1, -1)
	b.Br(isa.CondNE, 1, 0, "loop")
	b.Halt()

	v := NewValuePredict()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	h := memsys.New(memsys.DefaultConfig(1))
	m := cpu.New(cfg, b.Build(), h, v)
	m.Run(0)
	if m.Reg(9) != 30*7 {
		t.Fatalf("sum %d, want %d", m.Reg(9), 30*7)
	}
	if v.Stats.Correct == 0 {
		t.Fatalf("expected correct predictions after training: %+v", v.Stats)
	}
}
