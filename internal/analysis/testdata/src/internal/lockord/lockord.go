// Package lockord is the lockorder analyzer's golden input.
package lockord

import "sync"

// Counter's n is guarded: Add writes it under mu.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add establishes the guard relation by writing n with mu held.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Bad reads the guarded field with the guard provably not held.
func (c *Counter) Bad() int {
	return c.n // want `Counter.n is guarded by lockord.Counter.mu`
}

// readLocked follows the *Locked convention: mu is assumed held at entry.
func (c *Counter) readLocked() int {
	return c.n
}

// Snapshot uses the convention helper correctly.
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readLocked()
}

// Cond may or may not hold the lock at the read: Maybe is not provable,
// so no finding.
func (c *Counter) Cond(locked bool) int {
	if locked {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n
}

// Double acquires the same mutex class twice on one path.
func (c *Counter) Double() {
	c.mu.Lock()
	c.mu.Lock() // want `acquiring lockord.Counter.mu while it is already held`
	c.mu.Unlock()
	c.mu.Unlock()
}

// A and B form a lock-order cycle through AB and BA.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// AB takes A.mu then B.mu.
func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle: lockord.A.mu -> lockord.B.mu -> lockord.A.mu` // want `lockord.B.mu is locked and unlocked exactly once with a plain tail unlock`
	b.mu.Unlock()
}

// BA takes B.mu then A.mu — the opposite order.
func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lockord.A.mu is locked and unlocked exactly once with a plain tail unlock`
	a.mu.Unlock()
}

// lockB is a helper that acquires B.mu; edges must flow through calls.
func lockB(b *B) {
	b.mu.Lock() // want `lockord.B.mu is locked and unlocked exactly once with a plain tail unlock`
	b.mu.Unlock()
}

// ABIndirect records the same A->B edge through the helper summary.
func ABIndirect(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b)
}

// addTwice forwards to Add; the reacquisition summary must be transitive.
func addTwice(c *Counter) {
	c.Add()
}

// Reenter calls, with the lock held, a helper whose summary says it
// re-acquires the same class two frames down.
func (c *Counter) Reenter() {
	c.mu.Lock()
	defer c.mu.Unlock()
	addTwice(c) // want `calling addTwice, which may \(transitively\) acquire lockord.Counter.mu while it is already held`
}

// SpawnHeld spawns, with the lock held, a goroutine whose body needs the
// same lock: it cannot run until the spawner releases.
func (c *Counter) SpawnHeld() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { // want `goroutine spawned while lockord.Counter.mu is held, and the spawned function may \(transitively\) acquire lockord.Counter.mu`
		c.Add()
	}()
	c.n++
}

// SpawnFree spawns the same goroutine with no lock held: no finding, and
// the literal's own analysis starts from a fresh entry state.
func (c *Counter) SpawnFree() {
	go func() {
		c.Add()
	}()
}
