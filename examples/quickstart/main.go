// Quickstart: run one workload under the non-secure baseline and under
// CleanupSpec, and print the headline numbers — the 30-second tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	const workload = "astar"
	const n = 100_000

	base, err := sim.RunWorkload(workload, sim.Config{Policy: sim.NonSecure, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}
	cs, err := sim.RunWorkload(workload, sim.Config{Policy: sim.CleanupSpec, Instructions: n})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, %d instructions\n\n", workload, n)
	fmt.Printf("  non-secure baseline: %8d cycles (IPC %.2f)\n", base.Cycles, base.IPC)
	fmt.Printf("  CleanupSpec:         %8d cycles (IPC %.2f)\n", cs.Cycles, cs.IPC)
	fmt.Printf("  slowdown:            %+.1f%%  (paper reports 5.1%% on average, 24%% for astar)\n\n",
		(float64(cs.Cycles)/float64(base.Cycles)-1)*100)

	fmt.Printf("why it is cheap (Table 5's story):\n")
	fmt.Printf("  squashes per kilo-instruction: %.1f\n", cs.SquashPKI)
	fmt.Printf("  squashed loads needing no cleanup (not-issued + L1 hits): %.0f%%\n",
		cs.SquashedPctNI+cs.SquashedPctL1H)
	fmt.Printf("  squashed L1-misses dropped in flight (free):             %.0f%%\n", cs.InflightFrac*100)
	fmt.Printf("  stall per squash: %.1f cycles wait + %.1f cycles cleanup ops\n",
		cs.WaitPerSquash, cs.CleanupPerSquash)
	fmt.Printf("  SEFE storage: %d bytes/core (< 1 KB)\n", sim.StorageOverheadBytes())
}
