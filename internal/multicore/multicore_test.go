package multicore

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func prof(name string) workload.MTProfile {
	for _, p := range workload.MTProfiles() {
		if p.Name == name {
			return p
		}
	}
	panic("unknown profile " + name)
}

func TestClassification(t *testing.T) {
	p := workload.MTProfile{Name: "t", Seed: 1}
	s := New(p, 4)
	line := arch.LineAddr(0x123)
	if got := s.Classify(0, line); got != SafeDRAM {
		t.Fatalf("cold line class %v, want SafeDRAM", got)
	}
	s.load(0, line)
	if got := s.Classify(0, line); got != SafeCache {
		t.Fatalf("resident line class %v, want SafeCache", got)
	}
	// Remote core: the first reader holds the line Exclusive, so a
	// remote read is unsafe (E downgrades are observable, Section 3.5).
	if got := s.Classify(1, line); got != UnsafeRemoteEM {
		t.Fatalf("remote-E line class %v, want Unsafe", got)
	}
	// Once two cores share it, a third reader is safe.
	s.load(1, line)
	if got := s.Classify(2, line); got != SafeCache {
		t.Fatalf("shared line class %v, want SafeCache", got)
	}
	// After a store by core 0, core 1 sees remote-M: unsafe.
	s.store(0, line)
	if got := s.Classify(1, line); got != UnsafeRemoteEM {
		t.Fatalf("remote-M line class %v, want Unsafe", got)
	}
	// Core 0 itself: safe.
	if got := s.Classify(0, line); got != SafeCache {
		t.Fatalf("own-M line class %v, want SafeCache", got)
	}
	// A load by core 1 downgrades; further loads are safe.
	s.load(1, line)
	if got := s.Classify(2, line); got != SafeCache {
		t.Fatalf("post-downgrade class %v, want SafeCache", got)
	}
}

func TestDirectoryInvariantsDuringRun(t *testing.T) {
	s := New(prof("dedup"), 4)
	for i := 0; i < 2000; i++ {
		s.Step()
		if i%100 == 0 {
			if err := s.Directory().Check(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}

func TestUnsafeFractionTracksProfile(t *testing.T) {
	// Lock-heavy profiles must show more unsafe loads than
	// embarrassingly parallel ones, and the average should be small
	// (paper: 2.4% across the suite).
	heavy := New(prof("dedup"), 4).Run(20000)
	light := New(prof("swaptions"), 4).Run(20000)
	if heavy.UnsafeFrac() <= light.UnsafeFrac() {
		t.Fatalf("dedup unsafe %.4f <= swaptions %.4f", heavy.UnsafeFrac(), light.UnsafeFrac())
	}
	if heavy.UnsafeFrac() > 0.15 {
		t.Fatalf("dedup unsafe %.4f implausibly high", heavy.UnsafeFrac())
	}
	if light.UnsafeFrac() > 0.01 {
		t.Fatalf("swaptions unsafe %.4f should be near zero", light.UnsafeFrac())
	}
}

func TestSuiteAverageUnsafeNearPaper(t *testing.T) {
	// Figure 9: average unsafe share ~2.4%, with the suite mostly under
	// 10% per benchmark.
	sum := 0.0
	for _, p := range workload.MTProfiles() {
		st := New(p, 4).Run(8000)
		f := st.UnsafeFrac()
		if f > 0.12 {
			t.Errorf("%s unsafe %.3f out of plausible range", p.Name, f)
		}
		sum += f
	}
	avg := sum / float64(len(workload.MTProfiles()))
	if avg < 0.005 || avg > 0.06 {
		t.Errorf("suite average unsafe %.4f, paper reports ~0.024", avg)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	st := New(prof("canneal"), 4).Run(5000)
	total := st.SafeCacheFrac() + st.SafeDRAMFrac() + st.UnsafeFrac()
	if total < 0.999 || total > 1.001 {
		t.Fatalf("fractions sum to %v", total)
	}
}
