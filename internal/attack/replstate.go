package attack

import (
	"repro/internal/arch"
	"repro/internal/cache"
)

// ReplacementStateChannel demonstrates the replacement-state side channel
// of Section 2.1/3.2: a transient *hit* changes nothing in the tag array,
// but under LRU it reorders the victim-selection state, which an attacker
// can observe by forcing an eviction. CleanupSpec closes the channel by
// using random replacement for the L1 (a hit updates no state at all).
//
// The experiment: the attacker primes a 2-way set with lines A then B
// (A is now LRU). The victim transiently hits A (or does not). The
// attacker installs C, evicting the current LRU, and then checks whether A
// survived. Under LRU, A's survival reveals the transient hit; under
// random replacement the outcome is independent of it.
func ReplacementStateChannel(repl cache.ReplKind, transientHit bool, seed uint64) (aSurvived bool) {
	c := cache.New(cache.Config{
		Name: "L1", SizeBytes: 512, Ways: 2, Repl: repl, Seed: seed,
	})
	a, b, probe := arch.LineAddr(0), arch.LineAddr(4), arch.LineAddr(8) // same set
	c.Install(a, arch.Exclusive, 0, 1)
	c.Install(b, arch.Exclusive, 0, 2)
	if transientHit {
		c.Lookup(a) // the victim's transient hit
	}
	c.Install(probe, arch.Exclusive, 0, 3)
	_, ok := c.Probe(a)
	return ok
}
