// Package testprog builds small canonical programs used by the policy and
// attack test suites: scenarios that reliably produce a mispredicted branch
// with a wrong-path load in a chosen state (executed from L2, or still in
// flight from memory) at squash time.
//
// All scenarios assume the small test hierarchy returned by SmallHierarchy:
// a 512-byte, 2-way L1 (4 sets) over the default 2 MB L2, so that two
// committed loads can evict a third line from an L1 set while it stays in
// the L2.
package testprog

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// Addresses used by the scenarios. With a 4-set L1, lines 0, 4, 8 map to
// set 0 and lines 1, 5, 9 map to set 1.
const (
	AddrVictim1 = arch.Addr(0x000)  // line 0, L1 set 0
	AddrVictim2 = arch.Addr(0x100)  // line 4, L1 set 0
	AddrWrong   = arch.Addr(0x200)  // line 8, L1 set 0: the transient target
	AddrFlag    = arch.Addr(0x040)  // line 1, L1 set 1: branch condition
	AddrFlagEv1 = arch.Addr(0x140)  // line 5, L1 set 1
	AddrFlagEv2 = arch.Addr(0x240)  // line 9, L1 set 1
	AddrCold    = arch.Addr(0x8000) // never touched before the wrong path
	AddrCorrect = arch.Addr(0x4040) // correct-path load target (L1 set 1)
)

// SmallConfig returns the small-hierarchy memsys configuration.
func SmallConfig() memsys.Config {
	cfg := memsys.DefaultConfig(1)
	cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 512, Ways: 2, Repl: cache.ReplLRU}
	return cfg
}

// WrongPathExecuted builds the "executed transient load" scenario:
//
//  1. Warm AddrWrong into the L2 but not the L1 (load it, then evict it
//     from its L1 set with two victim loads that stay resident).
//  2. Load the branch flag from cold memory (slow, ~110 cycles).
//  3. Branch on the flag: actual not-taken, initial prediction taken.
//  4. Wrong path: load AddrWrong — an L2 hit that completes (~11 cycles)
//     and installs into the L1, evicting one of the victims, long before
//     the branch resolves.
//
// After the squash, CleanupSpec must invalidate AddrWrong from the L1 and
// restore the evicted victim; the non-secure baseline leaves both changes.
func WrongPathExecuted() *isa.Program {
	b := isa.NewBuilder("wrong-path-executed")
	// Phase 1: warm L2 with AddrWrong, keep victims in L1 set 0.
	b.Li(1, int64(AddrWrong))
	b.Load(2, 1, 0)
	b.Li(1, int64(AddrVictim1))
	b.Load(2, 1, 0)
	b.Li(1, int64(AddrVictim2))
	b.Load(2, 1, 0)
	// Drain: a fence keeps later loads from racing ahead of the warmup.
	b.Fence()
	// Phase 2: slow branch condition (cold line, value 1).
	b.InitData(AddrFlag, 1)
	b.Li(3, int64(AddrFlag))
	b.Load(4, 3, 0) // = 1
	// Phase 3: mispredicted branch — actually taken, predicted
	// not-taken (cold counters), so the fall-through is the wrong path.
	b.Br(isa.CondNE, 4, 0, "correct")
	// Wrong path: fast transient load that hits in the L2.
	b.Li(7, int64(AddrWrong))
	b.Load(8, 7, 0)
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.Li(5, int64(AddrCorrect))
	b.Load(6, 5, 0)
	b.Halt()
	return b.Build()
}

// WrongPathInflight builds the "in-flight transient load" scenario: the
// branch condition is an L2 hit (resolves in ~11 cycles) while the wrong
// path launches a cold load (~111 cycles), so the squash arrives while the
// transient miss is still in flight and its fill must be dropped
// (Section 3.3, the "inflight" class of Figure 15).
func WrongPathInflight() *isa.Program {
	b := isa.NewBuilder("wrong-path-inflight")
	// Warm the flag into L2 only: load it, then evict from L1 set 1.
	b.Li(1, int64(AddrFlag))
	b.Load(2, 1, 0)
	b.Li(1, int64(AddrFlagEv1))
	b.Load(2, 1, 0)
	b.Li(1, int64(AddrFlagEv2))
	b.Load(2, 1, 0)
	b.Fence()
	// Branch condition: L2 hit (~11 cycles), value 1 => actually taken,
	// predicted not-taken, so the fall-through is the wrong path.
	b.InitData(AddrFlag, 1)
	b.Li(3, int64(AddrFlag))
	b.Load(4, 3, 0) // = 1
	b.Br(isa.CondNE, 4, 0, "correct")
	// Wrong path: cold load, still in flight at squash time.
	b.Li(7, int64(AddrCold))
	b.Load(8, 7, 0)
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.Halt()
	return b.Build()
}

// PointerChase builds a dependent-load chain of n steps starting at base:
// each loaded value is the address of the next load. It separates
// InvisiSpec-Initial (value propagation at visibility) from Revised
// (propagation at data return) sharply.
func PointerChase(n int, base arch.Addr) *isa.Program {
	b := isa.NewBuilder("pointer-chase")
	// Build the chain in memory: node i at base + i*64 points to node i+1.
	for i := 0; i < n; i++ {
		b.InitData(base+arch.Addr(i*64), uint64(base)+uint64((i+1)*64))
	}
	b.Li(1, int64(base))
	b.Li(2, int64(n))
	b.Label("loop")
	b.Load(1, 1, 0) // r1 = next pointer (dependent chain)
	b.AddI(2, 2, -1)
	b.Br(isa.CondNE, 2, 0, "loop")
	b.Halt()
	return b.Build()
}

// SpecPointerChase is PointerChase with a data-dependent guard branch that
// resolves several cycles *after* each load returns (through a multiply
// chain), so the next iteration's load always issues speculatively. It is
// the canonical workload for separating the policies: non-secure issues the
// loads freely, delay-all stalls them, InvisiSpec-Revised forwards their
// values but pays updates, and InvisiSpec-Initial additionally defers the
// value to the visibility point.
func SpecPointerChase(n int, base arch.Addr) *isa.Program {
	b := isa.NewBuilder("spec-pointer-chase")
	for i := 0; i < n; i++ {
		b.InitData(base+arch.Addr(i*64), uint64(base)+uint64((i+1)*64))
	}
	b.Li(1, int64(base))
	b.Li(2, int64(n))
	b.Li(6, 1)
	b.Label("loop")
	b.Load(1, 1, 0)
	// Guard: (ptr*ptr)*(ptr*ptr) is always >= 1, so the branch is never
	// taken — but it resolves ~7 cycles after the load's data returns,
	// keeping the next load speculative.
	b.Alu(isa.AluMul, 5, 1, 1)
	b.Alu(isa.AluMul, 5, 5, 5)
	b.Br(isa.CondLTU, 5, 6, "exit")
	b.AddI(2, 2, -1)
	b.Br(isa.CondNE, 2, 0, "loop")
	b.Label("exit")
	b.Halt()
	return b.Build()
}
