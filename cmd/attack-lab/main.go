// Command attack-lab demonstrates the cache side channels the paper closes,
// beyond the Spectre PoC (see cmd/spectre-poc):
//
//	attack-lab -demo primeprobe   # L1 Prime+Probe vs CleanupSpec's restore
//	attack-lab -demo l2random     # L2 set-prediction vs CEASER randomization
//	attack-lab -demo replstate    # replacement-state channel vs random repl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
)

func main() {
	demo := flag.String("demo", "all", "primeprobe, l2random, replstate, or all")
	flag.Parse()
	switch *demo {
	case "primeprobe":
		primeProbe()
	case "l2random":
		l2Random()
	case "replstate":
		replState()
	case "all":
		primeProbe()
		l2Random()
		replState()
	default:
		fmt.Fprintln(os.Stderr, "attack-lab: unknown demo", *demo)
		os.Exit(2)
	}
}

func primeProbe() {
	fmt.Println("=== L1 Prime+Probe (Section 2.4.1) ===")
	fmt.Println("The attacker primes the L1 set of array2[secret*512], triggers the")
	fmt.Println("transient access, and re-times its own lines; a disturbed set reveals")
	fmt.Println("the transient install's eviction even after invalidation.")
	ns := attack.RunPrimeProbeL1(cpu.NonSecure{}, memsys.DefaultConfig(1), 22)
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(1))
	hcfg.L1.Repl = cache.ReplLRU
	cs := attack.RunPrimeProbeL1(core.New(), hcfg, 22)
	show := func(name string, r attack.PrimeProbeResult) {
		fmt.Printf("  %-12s way latencies %v -> eviction observed: %v\n",
			name, r.WayLatency, r.EvictionObserved)
	}
	show("nonsecure", ns)
	show("cleanupspec", cs)
	fmt.Println()
}

func l2Random() {
	fmt.Println("=== L2 Prime+Probe vs CEASER randomization (Section 3.2) ===")
	count := func(randomized bool) int {
		n := 0
		for seed := uint64(0); seed < 20; seed++ {
			if attack.L2PrimeProbeObservation(randomized, seed) {
				n++
			}
		}
		return n
	}
	fmt.Printf("  modulo-indexed L2:  attacker's set prediction works in %d/20 runs\n", count(false))
	fmt.Printf("  CEASER-indexed L2:  attacker's set prediction works in %d/20 runs\n", count(true))
	fmt.Println()
}

func replState() {
	fmt.Println("=== Replacement-state channel (Sections 2.1 / 3.2) ===")
	fmt.Println("A transient HIT changes no tags, but under LRU it decides which line a")
	fmt.Println("later install evicts. Random replacement removes the state entirely.")
	lruHit := attack.ReplacementStateChannel(cache.ReplLRU, true, 1)
	lruNoHit := attack.ReplacementStateChannel(cache.ReplLRU, false, 1)
	fmt.Printf("  LRU:    A survives with transient hit: %v; without: %v  (distinguishable -> leak)\n",
		lruHit, lruNoHit)
	same := true
	for seed := uint64(0); seed < 16; seed++ {
		if attack.ReplacementStateChannel(cache.ReplRandom, true, seed) !=
			attack.ReplacementStateChannel(cache.ReplRandom, false, seed) {
			same = false
		}
	}
	fmt.Printf("  Random: outcome independent of the transient hit across seeds: %v\n", same)
	fmt.Println()
}
