package specfuzz

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/sim"
)

// knownSpectre is a hand-written gadget in the exact shape of the classic
// Spectre-v1 PoC (cmd/spectre-poc): bounds-check window, direct index
// encoding, Flush+Reload receiver. It anchors the oracle to ground truth —
// if the fuzzer cannot see THIS leak, it can see nothing.
func knownSpectre() GadgetSpec {
	return GadgetSpec{
		ID:                "g-known",
		Seed:              1,
		Window:            WindowBoundsCheck,
		Pattern:           PatternIndex,
		Receiver:          RecvFlushReload,
		Entries:           16,
		Stride:            512,
		TrainRounds:       5,
		FlushBounds:       true,
		FenceBeforeAttack: true,
		DelayAfterAttack:  true,
		SecretResident:    true,
		SecretA:           11,
		SecretB:           13,
	}
}

// fuzzPolicies keeps library tests to the two poles that matter: the
// unprotected baseline (must leak) and the paper's defense (must not).
// The full policy matrix runs in the CI smoke job via cmd/specfuzz.
func fuzzPolicies() []sim.Policy { return []sim.Policy{sim.NonSecure, sim.CleanupSpec} }

func TestGenerateDeterministicAndPrefixStable(t *testing.T) {
	a := Generate(42, 24)
	b := Generate(42, 24)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with one seed disagree")
	}
	// Growing a campaign must not reshuffle existing gadgets: the first n
	// specs are a prefix of any longer run, so cached cells stay valid.
	if !reflect.DeepEqual(a[:8], Generate(42, 8)) {
		t.Fatal("Generate is not prefix-stable")
	}
	ids := make(map[string]bool)
	for _, s := range a {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", s.ID, err)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate gadget ID %s", s.ID)
		}
		ids[s.ID] = true
	}
	if reflect.DeepEqual(Generate(42, 8), Generate(43, 8)) {
		t.Fatal("different seeds produced identical gadgets")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range append(Generate(7, 8), knownSpectre()) {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back GadgetSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip changed %s:\n%+v\n%+v", s.ID, s, back)
		}
	}
	var k WindowKind
	if err := k.UnmarshalJSON([]byte(`"no-such-window"`)); err == nil {
		t.Fatal("unknown enum name accepted")
	}
}

// TestOracleKnownGadget is the subsystem's acceptance anchor: the known
// Spectre-v1 gadget must leak under the unprotected baseline and be fully
// cleaned by CleanupSpec.
func TestOracleKnownGadget(t *testing.T) {
	s := knownSpectre()
	v, err := RunPair(s, sim.Config{Policy: sim.NonSecure, Seed: s.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Leak {
		t.Fatalf("known Spectre gadget did not leak under nonsecure: %+v", v)
	}
	hasTiming := false
	for _, ch := range v.Channels {
		if ch == "timing" {
			hasTiming = true
		}
	}
	if !hasTiming {
		t.Fatalf("known gadget leaked without a timing channel: %v", v.Channels)
	}

	v, err = RunPair(s, sim.Config{Policy: sim.CleanupSpec, Seed: s.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if v.Leak {
		t.Fatalf("known gadget survived CleanupSpec: channels %v, maxΔ %d, state diffs %v",
			v.Channels, v.MaxTimingDelta, v.StateDiffs)
	}
}

// runReport runs a small campaign on a fresh engine with the given worker
// count and optional cache dir.
func runReport(t *testing.T, workers int, cacheDir string, opts Options) (Report, *campaign.Engine) {
	t.Helper()
	eng := campaign.NewEngine()
	eng.Workers = workers
	if cacheDir != "" {
		cache, err := campaign.OpenCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		eng.Cache = cache
	}
	rep, err := Run(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("cells failed: %v", rep.Failures)
	}
	return rep, eng
}

// marshal strips CacheHits (execution telemetry, not a verdict) and
// renders the rest for byte comparison.
func marshal(t *testing.T, rep Report) []byte {
	t.Helper()
	rep.CacheHits = 0
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicAcrossWorkers is the seed-determinism golden test:
// one seed, serial vs 8-way parallel, byte-identical verdicts and corpus.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	opts := Options{Seed: 5, Count: 6, Policies: fuzzPolicies()}
	serial, _ := runReport(t, 1, "", opts)
	parallel, _ := runReport(t, 8, "", opts)
	if !bytes.Equal(marshal(t, serial), marshal(t, parallel)) {
		t.Fatal("parallel run diverged from serial run")
	}

	var bufA, bufB bytes.Buffer
	if err := WriteCorpus(&bufA, CorpusFromReport(serial, opts.Policies)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpus(&bufB, CorpusFromReport(parallel, opts.Policies)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("corpora differ between serial and parallel runs")
	}

	// Repeating the serial run must also be byte-stable.
	again, _ := runReport(t, 1, "", opts)
	if !bytes.Equal(marshal(t, serial), marshal(t, again)) {
		t.Fatal("repeat run diverged")
	}
}

// TestRunResumesFromCache: a second campaign over the same grid must be
// served entirely from the cell cache — zero simulations — and fold to the
// same verdicts, which is what makes an interrupted fuzz resumable.
func TestRunResumesFromCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	opts := Options{Seed: 9, Count: 4, Policies: fuzzPolicies()}

	cold, first := runReport(t, 4, dir, opts)
	if first.Simulations() != int64(opts.Count*len(opts.Policies)) {
		t.Fatalf("cold run simulated %d cells, want %d", first.Simulations(), opts.Count*len(opts.Policies))
	}
	warm, second := runReport(t, 4, dir, opts)
	if second.Simulations() != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", second.Simulations())
	}
	if warm.CacheHits != opts.Count*len(opts.Policies) {
		t.Fatalf("warm run hit cache %d times, want %d", warm.CacheHits, opts.Count*len(opts.Policies))
	}
	if !bytes.Equal(marshal(t, cold), marshal(t, warm)) {
		t.Fatal("cached verdicts differ from simulated ones")
	}
}

func TestMinimizeShrinksAndStillLeaks(t *testing.T) {
	s := knownSpectre()
	s.NoiseBlocks = 3
	s.TrainRounds = 9
	cfg := sim.Config{Policy: sim.NonSecure, Seed: s.Seed}
	mr, err := Minimize(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Steps == 0 {
		t.Fatalf("minimizer accepted no reduction on a padded gadget (%d trials)", mr.Trials)
	}
	if err := mr.Reduced.Validate(); err != nil {
		t.Fatalf("reduced spec invalid: %v", err)
	}
	if mr.Reduced.NoiseBlocks != 0 {
		t.Fatalf("noise not stripped: %+v", mr.Reduced)
	}
	v, err := RunPair(mr.Reduced, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Leak {
		t.Fatal("reduced gadget no longer leaks")
	}

	// A gadget that does not leak must be rejected, not "minimized".
	clean := knownSpectre()
	if _, err := Minimize(clean, sim.Config{Policy: sim.CleanupSpec, Seed: clean.Seed}); err == nil {
		t.Fatal("Minimize accepted a non-leaking input")
	}
}

func TestCorpusRoundTripAndValidation(t *testing.T) {
	entries := []CorpusEntry{{
		Spec: knownSpectre(),
		Seed: 1,
		Expect: []Expectation{
			{Policy: string(sim.NonSecure), Leak: true, Channels: []string{"timing"}},
			{Policy: string(sim.CleanupSpec), Leak: false},
		},
	}}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := SaveCorpus(path, entries); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Fatalf("corpus round trip changed entries:\n%+v\n%+v", entries, back)
	}

	if _, err := ReadCorpus(strings.NewReader("{not json}\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad JSON not rejected with a line number: %v", err)
	}
	bad := knownSpectre()
	bad.Entries = 13 // not a power of two
	data, _ := json.Marshal(CorpusEntry{Spec: bad, Seed: 1})
	if _, err := ReadCorpus(bytes.NewReader(append(data, '\n'))); err == nil {
		t.Fatal("invalid spec accepted from corpus")
	}
}

// TestShippedSeedCorpus keeps the committed corpus honest under tier-1:
// every entry must parse, validate, and carry a nonsecure leak
// expectation, and the first entry must actually replay to (leaks
// unprotected, clean under CleanupSpec). The full-corpus × full-policy
// replay is the CI smoke-fuzz job (`specfuzz corpus`).
func TestShippedSeedCorpus(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "seed-corpus.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("shipped corpus is empty")
	}
	for _, e := range entries {
		leaksBaseline := false
		for _, x := range e.Expect {
			if x.Policy == string(sim.NonSecure) && x.Leak {
				leaksBaseline = true
			}
		}
		if !leaksBaseline {
			t.Fatalf("%s: shipped entry without a nonsecure leak expectation", e.Spec.ID)
		}
	}
	rep := Replay(entries[:1], fuzzPolicies())
	if len(rep.Mismatches) != 0 || len(rep.Failures) != 0 {
		t.Fatalf("first shipped entry does not replay: %+v", rep)
	}
	if rep.Leaks(string(sim.NonSecure)) != 1 || rep.Leaks(string(sim.CleanupSpec)) != 0 {
		t.Fatalf("first shipped entry verdicts drifted: %+v", rep.Policies)
	}
}

func TestReplayChecksExpectations(t *testing.T) {
	good := CorpusEntry{
		Spec: knownSpectre(),
		Seed: 1,
		Expect: []Expectation{
			{Policy: string(sim.NonSecure), Leak: true, Channels: []string{"timing"}},
			{Policy: string(sim.CleanupSpec), Leak: false},
		},
	}
	rep := Replay([]CorpusEntry{good}, fuzzPolicies())
	if len(rep.Mismatches) != 0 || len(rep.Failures) != 0 {
		t.Fatalf("clean corpus reported problems: %+v", rep)
	}
	if rep.Leaks(string(sim.NonSecure)) != 1 || rep.Leaks(string(sim.CleanupSpec)) != 0 {
		t.Fatalf("replay columns wrong: %+v", rep.Policies)
	}
	if rep.Leaks("no-such-policy") != -1 {
		t.Fatal("unreplayed policy did not report -1")
	}

	// A corpus claiming CleanupSpec leaks must be flagged as a mismatch.
	lying := good
	lying.Expect = []Expectation{{Policy: string(sim.CleanupSpec), Leak: true}}
	rep = Replay([]CorpusEntry{lying}, []sim.Policy{sim.CleanupSpec})
	if len(rep.Mismatches) != 1 {
		t.Fatalf("expectation violation not detected: %+v", rep)
	}
}
