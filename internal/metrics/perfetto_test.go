package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

func testTraceEvents() []trace.Event {
	return []trace.Event{
		{Cycle: 10, Kind: trace.KindLoadIssue, Seq: 1, PC: 0x40, Line: 7},
		{Cycle: 12, Kind: trace.KindLoadIssue, Seq: 2, PC: 0x44, Line: 9},
		{Cycle: 25, Kind: trace.KindLoadComplete, Seq: 1, Line: 7},
		{Cycle: 30, Kind: trace.KindSquash, Seq: 5, PC: 0x48},
		{Cycle: 31, Kind: trace.KindFetchRedirect, PC: 0x20, Arg: 3},
		{Cycle: 32, Kind: trace.KindCleanupInval, Line: 7},
		{Cycle: 35, Kind: trace.KindCleanupRestore, Line: 8, Arg: 12},
		{Cycle: 40, Kind: trace.KindSpecWindow, Seq: 1, Line: 7, Arg: 15},
		{Cycle: 41, Kind: trace.KindCommit, Seq: 6, PC: 0x4c},
		{Cycle: 50, Kind: trace.KindHalt, Seq: 7},
	}
}

func testSamples() []Sample {
	return []Sample{
		{Cycle: 20, Counters: map[string]uint64{"cpu.committed": 30}, Gauges: map[string]float64{"mem.pending_txns": 2}},
		{Cycle: 40, Counters: map[string]uint64{"cpu.committed": 70}, Gauges: map[string]float64{"mem.pending_txns": 0}},
	}
}

// TestBuildChromeEventsWellFormed pins the trace-event invariants the
// Chrome/Perfetto loader cares about: known phases, positive pid, a named
// tid track for every non-counter event, and metadata naming every track.
func TestBuildChromeEventsWellFormed(t *testing.T) {
	evs := BuildChromeEvents(ChromeTraceOpts{
		Process: "cleanupspec/astar",
		Events:  testTraceEvents(),
		Samples: testSamples(),
		Counters: []CounterSeries{
			{Name: "ipc", Values: []float64{1.5, 2.0}},
		},
	})
	if len(evs) == 0 {
		t.Fatal("no events built")
	}
	validPh := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	namedTracks := map[int]bool{}
	for i, e := range evs {
		if !validPh[e.Ph] {
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
		if e.Pid <= 0 {
			t.Fatalf("event %d has pid %d, want > 0", i, e.Pid)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			namedTracks[e.Tid] = true
		}
		if (e.Ph == "X" || e.Ph == "i") && e.Tid == 0 {
			t.Fatalf("event %d (%s) is on tid 0 (unnamed track)", i, e.Name)
		}
		if e.Ph == "i" && e.S == "" {
			t.Fatalf("instant event %d missing scope", i)
		}
	}
	for _, tid := range []int{TidLoads, TidSquashes, TidCleanups, TidWindows, TidCommits} {
		if !namedTracks[tid] {
			t.Fatalf("track %d has no thread_name metadata", tid)
		}
	}
}

func findEvent(evs []ChromeEvent, name string) (ChromeEvent, bool) {
	for _, e := range evs {
		if e.Name == name {
			return e, true
		}
	}
	return ChromeEvent{}, false
}

func TestBuildChromeEventsSemantics(t *testing.T) {
	evs := BuildChromeEvents(ChromeTraceOpts{Process: "p", Events: testTraceEvents(), Samples: testSamples()})

	// Load issue@10 + complete@25 pair into one complete event.
	load, ok := findEvent(evs, "load")
	if !ok || load.Ph != "X" || load.Ts != 10 || load.Dur != 15 || load.Tid != TidLoads {
		t.Fatalf("paired load event: %+v", load)
	}
	// The spec window (end=40, len=15) spans [25, 40] on the windows track.
	win, ok := findEvent(evs, "exposed-window")
	if !ok || win.Ph != "X" || win.Ts != 25 || win.Dur != 15 || win.Tid != TidWindows {
		t.Fatalf("exposed-window event: %+v", win)
	}
	// The restore carries its latency as duration.
	rst, ok := findEvent(evs, "cleanup-restore")
	if !ok || rst.Ph != "X" || rst.Dur != 12 || rst.Tid != TidCleanups {
		t.Fatalf("cleanup-restore event: %+v", rst)
	}
	// The load issued at 12 never completed: it must surface as in-flight,
	// not vanish.
	inflight, ok := findEvent(evs, "load-inflight")
	if !ok || inflight.Ts != 12 {
		t.Fatalf("in-flight load: %+v", inflight)
	}
	// Gauges become counter tracks, one value per sample.
	n := 0
	for _, e := range evs {
		if e.Ph == "C" && e.Name == "mem.pending_txns" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("gauge counter events = %d, want one per sample", n)
	}
}

// TestExportChromeTraceValidJSON round-trips the export through a JSON
// decode and pins determinism: two exports of the same run are identical
// bytes.
func TestExportChromeTraceValidJSON(t *testing.T) {
	opts := ChromeTraceOpts{Process: "p", Events: testTraceEvents(), Samples: testSamples(),
		Counters: []CounterSeries{{Name: "ipc", Values: []float64{1, 2}}}}
	var a, b bytes.Buffer
	if err := ExportChromeTrace(&a, opts); err != nil {
		t.Fatal(err)
	}
	if err := ExportChromeTrace(&b, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export is not deterministic")
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 || file.Unit == "" {
		t.Fatal("export missing traceEvents or displayTimeUnit")
	}
	for i, e := range file.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, e)
			}
		}
	}
}

// TestExportChromeTraceMulti checks per-policy process separation: two runs
// merge into one file with distinct pids and their own process_name.
func TestExportChromeTraceMulti(t *testing.T) {
	var buf bytes.Buffer
	err := ExportChromeTraceMulti(&buf, []ChromeTraceOpts{
		{Process: "nonsecure/astar", Events: testTraceEvents()},
		{Process: "cleanupspec/astar", Events: testTraceEvents()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	pids := map[int]string{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			pids[e.Pid] = e.Args["name"].(string)
		}
	}
	if len(pids) != 2 || pids[1] != "nonsecure/astar" || pids[2] != "cleanupspec/astar" {
		t.Fatalf("process tracks: %v", pids)
	}
}
