package fabric

import "fmt"

// cellState is one cell's position in the lease lifecycle.
type cellState uint8

const (
	statePending cellState = iota
	stateLeased
	stateDone
	stateFailed
	stateQuarantined
)

// String names a state for counters and error text.
func (s cellState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// cellRec is one cell's scheduling state.
type cellRec struct {
	cell   Cell
	state  cellState
	worker string // holder while leased
	lease  uint64 // lease id while leased
	expiry uint64 // tick at which the lease dies unless renewed
	// requeues counts lease reclaims — how many times a worker went dark
	// on this cell.
	requeues int
	// failReason is kept for failed/quarantined cells (dep cascades
	// included).
	failReason string
}

// queue is the coordinator's dependency-aware work queue. It is pure
// in-memory state-machine logic with zero locking or I/O — the
// coordinator serializes access under its own mutex, and the chaos tests
// drive it through thousands of adversarial schedules cheaply.
//
// Scheduling is deterministic: cells are considered in insertion order,
// so the same queue state always grants the same next cell.
type queue struct {
	order []string
	cells map[string]*cellRec
}

// newQueue validates the cell set (unique keys, known deps, no dependency
// cycles) and builds the queue with every cell pending.
func newQueue(cells []Cell) (*queue, error) {
	q := &queue{cells: make(map[string]*cellRec, len(cells))}
	for _, c := range cells {
		if c.Key == "" {
			return nil, fmt.Errorf("fabric: cell %s has no key (use CellsFromJobs)", c.Job)
		}
		if _, dup := q.cells[c.Key]; dup {
			return nil, fmt.Errorf("fabric: duplicate cell key %s", c.Key)
		}
		q.cells[c.Key] = &cellRec{cell: c}
		q.order = append(q.order, c.Key)
	}
	for _, c := range cells {
		for _, dep := range c.Deps {
			if _, ok := q.cells[dep]; !ok {
				return nil, fmt.Errorf("fabric: cell %s depends on unknown key %s", c.Key, dep)
			}
		}
	}
	if key, ok := q.findCycle(); ok {
		return nil, fmt.Errorf("fabric: dependency cycle through cell %s", key)
	}
	return q, nil
}

// findCycle runs a three-color DFS over the dependency edges.
func (q *queue) findCycle() (string, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(q.cells))
	var visit func(key string) bool
	visit = func(key string) bool {
		color[key] = gray
		for _, dep := range q.cells[key].cell.Deps {
			switch color[dep] {
			case gray:
				return true
			case white:
				if visit(dep) {
					return true
				}
			}
		}
		color[key] = black
		return false
	}
	for _, key := range q.order {
		if color[key] == white && visit(key) {
			return key, true
		}
	}
	return "", false
}

// markDone settles a cell from outside the lease flow — the startup cache
// probe marking already-simulated cells.
func (q *queue) markDone(key string) {
	if rec, ok := q.cells[key]; ok {
		rec.state = stateDone
	}
}

// depsReady reports whether every dependency of rec is done.
func (q *queue) depsReady(rec *cellRec) bool {
	for _, dep := range rec.cell.Deps {
		if q.cells[dep].state != stateDone {
			return false
		}
	}
	return true
}

// cascadeFailures settles cells that can never run because a dependency
// failed or was quarantined, iterating until the wavefront stops moving.
// Without this, a failed dep would leave its dependents pending forever
// and the campaign would never terminate.
func (q *queue) cascadeFailures() int {
	settled := 0
	for changed := true; changed; {
		changed = false
		for _, key := range q.order {
			rec := q.cells[key]
			if rec.state != statePending {
				continue
			}
			for _, dep := range rec.cell.Deps {
				if ds := q.cells[dep].state; ds == stateFailed || ds == stateQuarantined {
					rec.state = stateFailed
					rec.failReason = fmt.Sprintf("dependency %s %s", dep, ds)
					settled++
					changed = true
					break
				}
			}
		}
	}
	return settled
}

// lease grants the first pending cell whose dependencies are done to
// worker, stamping it with the lease id and expiry tick. ok=false means
// nothing is leasable right now — which is "wait" if work is still in
// flight and "done" if the queue is settled (the coordinator tells those
// apart via settled()).
func (q *queue) lease(worker string, leaseID, expiry uint64) (*cellRec, bool) {
	for _, key := range q.order {
		rec := q.cells[key]
		if rec.state != statePending || !q.depsReady(rec) {
			continue
		}
		rec.state = stateLeased
		rec.worker = worker
		rec.lease = leaseID
		rec.expiry = expiry
		return rec, true
	}
	return nil, false
}

// held returns the cell currently leased by worker, if any — the re-grant
// path for a worker whose grant response was lost in transit.
func (q *queue) held(worker string) (*cellRec, bool) {
	for _, key := range q.order {
		rec := q.cells[key]
		if rec.state == stateLeased && rec.worker == worker {
			return rec, true
		}
	}
	return nil, false
}

// renew extends a live lease's expiry; false means the lease is unknown
// or stale (already reclaimed or completed).
func (q *queue) renew(key string, leaseID, expiry uint64) bool {
	rec, ok := q.cells[key]
	if !ok || rec.state != stateLeased || rec.lease != leaseID {
		return false
	}
	rec.expiry = expiry
	return true
}

// complete settles a cell with its final state. stale reports the lease
// id didn't match a live lease (the reclaimed-then-finished race);
// already reports the cell was settled before this call (the duplicated
// completion race). Both are accepted: results are content-addressed, so
// a stale twin is byte-identical to the winner.
func (q *queue) complete(key string, leaseID uint64, state cellState, reason string) (stale, already bool) {
	rec, ok := q.cells[key]
	if !ok {
		return true, false
	}
	switch rec.state {
	case stateDone, stateFailed, stateQuarantined:
		return true, true
	default:
		// Pending or leased: settle below.
	}
	stale = rec.state != stateLeased || rec.lease != leaseID
	rec.state = state
	rec.failReason = reason
	rec.worker = ""
	rec.lease = 0
	return stale, false
}

// expireDue reclaims every lease whose expiry tick has passed, returning
// the reclaimed cells (now pending again, requeues bumped).
func (q *queue) expireDue(tick uint64) []*cellRec {
	var due []*cellRec
	for _, key := range q.order {
		rec := q.cells[key]
		if rec.state == stateLeased && rec.expiry <= tick {
			rec.state = statePending
			rec.worker = ""
			rec.lease = 0
			rec.requeues++
			due = append(due, rec)
		}
	}
	return due
}

// settled reports whether every cell has reached a terminal state.
func (q *queue) settled() bool {
	for _, key := range q.order {
		switch q.cells[key].state {
		case statePending, stateLeased:
			return false
		default:
			// Terminal.
		}
	}
	return true
}

// counts tallies cells per state.
func (q *queue) counts() (pending, leased, done, failed, quarantined int) {
	for _, key := range q.order {
		switch q.cells[key].state {
		case statePending:
			pending++
		case stateLeased:
			leased++
		case stateDone:
			done++
		case stateFailed:
			failed++
		case stateQuarantined:
			quarantined++
		default:
			// Unreachable: counts covers every cellState.
		}
	}
	return
}
