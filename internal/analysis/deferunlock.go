package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDeferUnlock mechanizes the deferred-unlock idiom: a function
// whose body acquires a mutex class exactly once and releases it exactly
// once, with the release as a plain top-level `x.Unlock()` statement, is
// rewritten by `simlint -fix` into `x.Lock(); defer x.Unlock()` — the
// release then also covers panic paths and early returns added later.
//
// The rewrite extends the critical section over whatever trails the
// original Unlock, so it is offered only where that is provably harmless:
//
//   - No trailing statement may (transitively) acquire the same class —
//     proven with the interprocedural lock summaries, so a helper call
//     that locks three frames down correctly blocks the fix.
//   - No trailing channel operation, select, sync.* blocking call, or
//     goroutine spawn: those can block or run concurrently while the lock
//     is now still held, which the original code did not do.
//   - No return between Lock and Unlock (the original leaked the lock on
//     that path; the fix would silently change behavior instead of fixing
//     the bug — that path deserves a human).
//   - Calls that cannot be resolved (dynamic function values) are assumed
//     unsafe.
//
// Applying the fix removes the pattern (the release becomes a DeferStmt),
// so a second -fix run finds nothing: the rewrite is idempotent.
var AnalyzerDeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "rewrite single Lock/Unlock pairs into the defer idiom where lock summaries prove the extended critical section safe (-fix)",
	Run:  runDeferUnlock,
}

func runDeferUnlock(p *Pass) {
	rel := p.Pkg.Rel()
	if !hasPathPrefix(rel, "internal") && !hasPathPrefix(rel, "sim") {
		return
	}
	facts := p.runner.lockModel(p.Mod)
	for _, n := range facts.g.nodes {
		if n.pkg != p.Pkg {
			continue
		}
		checkDeferUnlock(p, facts, n)
	}
}

// lockStmtOp classifies a top-level statement as a mutex operation.
func lockStmtOp(pkg *Package, stmt ast.Stmt) (class string, op int, call *ast.CallExpr) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", 0, nil
	}
	c, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", 0, nil
	}
	class, op = lockOp(pkg, c)
	return class, op, c
}

// checkDeferUnlock looks for the rewritable pattern in one function body.
func checkDeferUnlock(p *Pass, facts *lockFacts, n *cgNode) {
	body := n.body
	// Count every acquire/release per class in the whole body (nested
	// blocks included, nested literals excluded): the pattern needs
	// exactly one of each, which also guarantees a previously applied fix
	// (a DeferStmt release) blocks re-matching.
	acquires := make(map[string]int)
	releases := make(map[string]int)
	walkShallow(body, func(m ast.Node) {
		if c, ok := m.(*ast.CallExpr); ok {
			switch class, op := lockOp(n.pkg, c); op {
			case lockAcquire:
				acquires[class]++
			case lockRelease:
				releases[class]++
			}
		}
	})

	for i, stmt := range body.List {
		class, op, lockCall := lockStmtOp(n.pkg, stmt)
		if op != lockAcquire || acquires[class] != 1 || releases[class] != 1 {
			continue
		}
		lockName := lockCall.Fun.(*ast.SelectorExpr).Sel.Name
		// Find the matching top-level release after it.
		relIdx := -1
		var relCall *ast.CallExpr
		for j := i + 1; j < len(body.List); j++ {
			c2, op2, call2 := lockStmtOp(n.pkg, body.List[j])
			if op2 == lockRelease && c2 == class {
				if call2.Fun.(*ast.SelectorExpr).Sel.Name == unlockNameFor(lockName) {
					relIdx, relCall = j, call2
				}
				break
			}
		}
		if relIdx < 0 {
			continue
		}
		// The critical section must not return (that path leaks the lock
		// today; rewriting would change behavior, not report the bug).
		sectionSafe := true
		for j := i + 1; j < relIdx && sectionSafe; j++ {
			walkShallow(wrapBlock(body.List[j]), func(m ast.Node) {
				if _, ok := m.(*ast.ReturnStmt); ok {
					sectionSafe = false
				}
			})
		}
		if !sectionSafe {
			continue
		}
		if !tailSafe(p, facts, n, body.List[relIdx+1:], class) {
			continue
		}
		unlockSrc := exprString(relCall.Fun.(*ast.SelectorExpr).X) + "." + unlockNameFor(lockName) + "()"
		fix := &Fix{
			Message: "defer the unlock right after the lock",
			Edits: []TextEdit{
				{Pos: stmt.End(), End: stmt.End(), NewText: "\ndefer " + unlockSrc},
				{Pos: body.List[relIdx].Pos(), End: body.List[relIdx].End(), NewText: ""},
			},
		}
		p.ReportFix(stmt.Pos(), fix,
			"%s is locked and unlocked exactly once with a plain tail unlock: use `defer %s` right after the Lock so panic paths and future early returns release it (simlint -fix rewrites this)",
			shortClass(p, class), unlockSrc)
	}
}

// unlockNameFor pairs an acquire method with its release.
func unlockNameFor(lockName string) string {
	if lockName == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// wrapBlock adapts a single statement to walkShallow's block interface.
func wrapBlock(s ast.Stmt) *ast.BlockStmt {
	if b, ok := s.(*ast.BlockStmt); ok {
		return b
	}
	return &ast.BlockStmt{List: []ast.Stmt{s}}
}

// tailSafe proves the statements after the original Unlock tolerate the
// critical section extending over them.
func tailSafe(p *Pass, facts *lockFacts, n *cgNode, tail []ast.Stmt, class string) bool {
	safe := true
	var scan func(m ast.Node) bool
	scan = func(m ast.Node) bool {
		if !safe {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			// A literal defined in the tail runs later; all that matters
			// is whether it can acquire the class.
			for _, c := range facts.nodeAcquires(facts.g.litNode(m)) {
				if c == class {
					safe = false
				}
			}
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			safe = false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				safe = false // channel receive can block while we now hold the lock
			}
		case *ast.GoStmt:
			safe = false // the spawned goroutine now races the extended section
		case *ast.CallExpr:
			if cls, op := lockOp(n.pkg, m); op != 0 && cls != "" {
				return true // counted ops; uniqueness already vetted them
			}
			safe = callSafeInTail(p, facts, n, m, class) && safe
		}
		return safe
	}
	for _, s := range tail {
		if !safe {
			break
		}
		ast.Inspect(s, scan)
	}
	return safe
}

// callSafeInTail reports whether one tail call provably neither
// re-acquires class nor blocks on concurrency primitives.
func callSafeInTail(p *Pass, facts *lockFacts, n *cgNode, call *ast.CallExpr, class string) bool {
	for _, acquired := range facts.acquiresOf(n.pkg, call) {
		if acquired == class {
			return false // summary-proven re-acquisition: extending would self-deadlock
		}
	}
	fn := calleeFunc(n.pkg, call)
	if fn == nil {
		if tv, ok := n.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // type conversion, not a call
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, builtin := n.pkg.Info.Uses[id].(*types.Builtin); builtin {
				return true
			}
		}
		return false // dynamic call: cannot prove anything about it
	}
	if fn.Pkg() == nil {
		return true // builtins (len, append, …)
	}
	if fn.Pkg().Path() == "sync" {
		return false // Wait/Cond-style blocking while holding the lock
	}
	if len(facts.g.calleesOf(n.pkg, call)) == 0 && isModuleFunc(p.Mod, fn) {
		return false // module function without a node (no body seen): unknown
	}
	return true
}

// isModuleFunc reports whether fn is declared inside the analyzed module.
func isModuleFunc(mod *Module, fn *types.Func) bool {
	return fn.Pkg() != nil && (fn.Pkg().Path() == mod.Path ||
		len(fn.Pkg().Path()) > len(mod.Path) && fn.Pkg().Path()[:len(mod.Path)+1] == mod.Path+"/")
}
