// Package cmath is the cyclemath analyzer's golden input: uint64 cycle
// subtraction must be dominated by a provable order guard, and cycle
// values must stay unsigned end to end.
package cmath

// Cycle mirrors arch.Cycle: a named uint64 cycle type.
type Cycle uint64

// Unguarded subtracts cycle counts with no dominating order guard: if
// the operands ever flip, unsigned wrap yields an absurd duration.
func Unguarded(nowCycle, issuedCycle uint64) uint64 {
	return nowCycle - issuedCycle // want `uint64 cycle subtraction nowCycle - issuedCycle is not dominated`
}

// Guarded is dominated by the >= comparison: no finding.
func Guarded(nowCycle, issuedCycle uint64) uint64 {
	if nowCycle >= issuedCycle {
		return nowCycle - issuedCycle
	}
	return 0
}

// EarlyExit proves the order by negation — the terminating branch
// removes the nowCycle < issuedCycle case: no finding.
func EarlyExit(nowCycle, issuedCycle uint64) uint64 {
	if nowCycle < issuedCycle {
		return 0
	}
	return nowCycle - issuedCycle
}

// BranchOnly guards only one branch; on the joined path after the if,
// the ordering fact no longer holds, so the subtraction is flagged.
func BranchOnly(nowCycle, issuedCycle uint64, verbose bool) uint64 {
	if nowCycle >= issuedCycle {
		_ = verbose
	}
	return nowCycle - issuedCycle // want `uint64 cycle subtraction nowCycle - issuedCycle is not dominated`
}

// Reassigned shows the kill rule: the guard's fact dies when either
// operand is written again before the subtraction.
func Reassigned(nowCycle, issuedCycle uint64) uint64 {
	if nowCycle >= issuedCycle {
		issuedCycle += 10
		return nowCycle - issuedCycle // want `uint64 cycle subtraction nowCycle - issuedCycle is not dominated`
	}
	return 0
}

// ToSigned truncates and sign-flips a cycle count past 2^63.
func ToSigned(c Cycle) int64 {
	return int64(c) // want `cycle value c converted to signed int64`
}

// FromSigned wraps a negative value into ~1.8e19 cycles.
func FromSigned(n int) Cycle {
	return Cycle(n) // want `signed int converted to cycle type cmath.Cycle`
}
