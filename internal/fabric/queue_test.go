package fabric

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/sim"
)

// testCells builds n dependency-free cells with distinct, stable keys.
func testCells(t *testing.T, n int) []Cell {
	t.Helper()
	jobs := make([]campaign.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, campaign.Job{
			Workload: "gcc",
			Config:   sim.Config{Policy: sim.CleanupSpec, Instructions: 500, Seed: uint64(i + 1)},
		})
	}
	cells, err := CellsFromJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestQueueValidation(t *testing.T) {
	cells := testCells(t, 3)

	if _, err := newQueue([]Cell{{Job: cells[0].Job}}); err == nil || !strings.Contains(err.Error(), "no key") {
		t.Errorf("keyless cell accepted: %v", err)
	}
	if _, err := newQueue([]Cell{cells[0], cells[0]}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate key accepted: %v", err)
	}
	bad := []Cell{cells[0], {Job: cells[1].Job, Key: cells[1].Key, Deps: []string{"nonexistent"}}}
	if _, err := newQueue(bad); err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Errorf("unknown dep accepted: %v", err)
	}
	loop := []Cell{
		{Job: cells[0].Job, Key: cells[0].Key, Deps: []string{cells[1].Key}},
		{Job: cells[1].Job, Key: cells[1].Key, Deps: []string{cells[2].Key}},
		{Job: cells[2].Job, Key: cells[2].Key, Deps: []string{cells[0].Key}},
	}
	if _, err := newQueue(loop); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("dependency cycle accepted: %v", err)
	}
	if _, err := newQueue(cells); err != nil {
		t.Errorf("valid cell set rejected: %v", err)
	}
}

func TestQueueDependencyScheduling(t *testing.T) {
	cells := testCells(t, 3)
	// cell2 depends on cell0: it must not lease until cell0 completes.
	cells[2].Deps = []string{cells[0].Key}
	q, err := newQueue(cells)
	if err != nil {
		t.Fatal(err)
	}

	r1, ok := q.lease("w1", 1, 100)
	if !ok || r1.cell.Key != cells[0].Key {
		t.Fatalf("first lease: got %+v ok=%v, want cell0", r1, ok)
	}
	r2, ok := q.lease("w2", 2, 100)
	if !ok || r2.cell.Key != cells[1].Key {
		t.Fatalf("second lease: got %+v ok=%v, want cell1 (cell2 is blocked)", r2, ok)
	}
	if _, ok := q.lease("w3", 3, 100); ok {
		t.Fatal("cell2 leased while its dependency is in flight")
	}
	if stale, already := q.complete(cells[0].Key, 1, stateDone, ""); stale || already {
		t.Fatalf("live completion flagged stale=%v already=%v", stale, already)
	}
	r3, ok := q.lease("w3", 3, 100)
	if !ok || r3.cell.Key != cells[2].Key {
		t.Fatalf("post-dep lease: got %+v ok=%v, want cell2", r3, ok)
	}
}

func TestQueueHeldRegrant(t *testing.T) {
	q, err := newQueue(testCells(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := q.lease("w1", 1, 100)
	held, ok := q.held("w1")
	if !ok || held != rec {
		t.Fatalf("held(w1) = %+v ok=%v, want the leased cell", held, ok)
	}
	if _, ok := q.held("w2"); ok {
		t.Fatal("held(w2) found a lease it never took")
	}
}

func TestQueueRenewAndExpiry(t *testing.T) {
	cells := testCells(t, 1)
	q, err := newQueue(cells)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := q.lease("w1", 1, 10)

	if !q.renew(cells[0].Key, 1, 20) {
		t.Fatal("renewing a live lease failed")
	}
	if q.renew(cells[0].Key, 99, 20) {
		t.Fatal("renew with a stale lease id succeeded")
	}
	if due := q.expireDue(19); len(due) != 0 {
		t.Fatalf("lease expired before its renewed deadline: %d reclaimed", len(due))
	}
	due := q.expireDue(20)
	if len(due) != 1 || due[0] != rec || rec.state != statePending || rec.requeues != 1 {
		t.Fatalf("expiry at deadline: due=%d state=%v requeues=%d", len(due), rec.state, rec.requeues)
	}
	// The dead worker's heartbeat is now stale.
	if q.renew(cells[0].Key, 1, 30) {
		t.Fatal("renew succeeded on a reclaimed lease")
	}
}

func TestQueueStaleAndDuplicateCompletion(t *testing.T) {
	cells := testCells(t, 1)
	q, err := newQueue(cells)
	if err != nil {
		t.Fatal(err)
	}
	q.lease("w1", 1, 10)
	q.expireDue(10) // reclaim: w1 is presumed dead
	q.lease("w2", 2, 30)

	// w1 finishes anyway: stale but accepted (results are content-addressed).
	stale, already := q.complete(cells[0].Key, 1, stateDone, "")
	if !stale || already {
		t.Fatalf("reclaimed-lease completion: stale=%v already=%v, want stale only", stale, already)
	}
	// w2 finishes the same cell: a duplicate of a settled cell.
	stale, already = q.complete(cells[0].Key, 2, stateDone, "")
	if !stale || !already {
		t.Fatalf("double completion: stale=%v already=%v, want both", stale, already)
	}
	if !q.settled() {
		t.Fatal("queue not settled after completion")
	}
}

func TestQueueCascadeFailures(t *testing.T) {
	cells := testCells(t, 3)
	cells[1].Deps = []string{cells[0].Key}
	cells[2].Deps = []string{cells[1].Key}
	q, err := newQueue(cells)
	if err != nil {
		t.Fatal(err)
	}
	q.lease("w1", 1, 100)
	q.complete(cells[0].Key, 1, stateFailed, "boom")

	if n := q.cascadeFailures(); n != 2 {
		t.Fatalf("cascade settled %d cells, want 2 (the whole dependent chain)", n)
	}
	if !q.settled() {
		t.Fatal("queue not settled after cascade")
	}
	if reason := q.cells[cells[2].Key].failReason; !strings.Contains(reason, "dependency") {
		t.Errorf("cascaded failure reason = %q, want a dependency explanation", reason)
	}
	p, l, d, f, quarantined := q.counts()
	if p != 0 || l != 0 || d != 0 || f != 3 || quarantined != 0 {
		t.Errorf("counts = %d/%d/%d/%d/%d, want 0/0/0/3/0", p, l, d, f, quarantined)
	}
}
