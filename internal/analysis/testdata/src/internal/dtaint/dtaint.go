// Package dtaint is the detertaint analyzer's golden input: taint must
// travel through returns, fields, closures, and sink parameters, and be
// laundered by sorting — reporting-only wall reads stay silent.
package dtaint

import (
	"maps"
	"math/rand"
	"slices"
	"time"

	"example.com/lint/internal/xrand"
)

// wallSeed returns a wall-clock-derived value; callers inherit the taint
// through the return summary.
func wallSeed() uint64 {
	return uint64(time.Now().UnixNano())
}

// BadSeedFromClock feeds wall taint into the seed derivation through a
// helper's return value.
func BadSeedFromClock() *xrand.Rand {
	s := wallSeed()
	return xrand.New(s) // want `value derived from the wall clock \(time.Now\) reaches the xrand.New seed/ID derivation`
}

// BadDirectRand calls ambient math/rand: reported unconditionally, with
// no sink required.
func BadDirectRand() int {
	return rand.Int() // want `call into math/rand: simulator randomness must flow through explicitly seeded internal/xrand generators`
}

// carrier persists taint in a struct field written far from the sink.
type carrier struct{ base uint64 }

// fill stores a wall-derived value into the field.
func fill(c *carrier) {
	c.base = wallSeed()
}

// BadSeedFromField reads the tainted field into the hash sink; the flow
// crosses two functions and a field.
func BadSeedFromField(c *carrier) uint64 {
	fill(c)
	return xrand.Hash64(c.base) // want `value derived from the wall clock \(time.Now\) reaches the xrand.Hash64 seed/ID derivation`
}

// deriveID forwards its parameter into the hash: the parameter becomes a
// sink, so every call site of deriveID is one too.
func deriveID(x uint64) uint64 {
	return xrand.Hash64(x)
}

// BadTransitiveSink reaches the hash through the helper's sink parameter.
func BadTransitiveSink() uint64 {
	return deriveID(wallSeed()) // want `value derived from the wall clock \(time.Now\) reaches deriveID, whose parameter feeds a key/ID/stats derivation`
}

// BadClosureFlow sources and sinks inside a function literal, which has
// its own call-graph node.
func BadClosureFlow() uint64 {
	f := func() uint64 {
		return xrand.Hash64(wallSeed()) // want `value derived from the wall clock \(time.Now\) reaches the xrand.Hash64 seed/ID derivation`
	}
	return f()
}

// BadIterOrderIntoHash hashes map keys in iterator order: maps.Keys slips
// past a range-statement check, so the taint engine must catch it.
func BadIterOrderIntoHash(m map[uint64]int) uint64 {
	keys := slices.Collect(maps.Keys(m))
	return xrand.Hash64(keys...) // want `value derived from map iteration order reaches the xrand.Hash64 seed/ID derivation`
}

// GoodSortedKeys launders iterator order with the blessed idiom before
// the sink: no finding.
func GoodSortedKeys(m map[uint64]int) uint64 {
	keys := slices.Sorted(maps.Keys(m))
	return xrand.Hash64(keys...)
}

// GoodStatementSorted launders with a statement-level sort between the
// collect and the sink: no finding.
func GoodStatementSorted(m map[uint64]int) uint64 {
	keys := slices.Collect(maps.Keys(m))
	slices.Sort(keys)
	return xrand.Hash64(keys...)
}

// RunStats accumulates run-level numbers; fields of *Stats structs are
// determinism sinks for wall and rand taint.
type RunStats struct {
	Elapsed uint64
}

// BadWallIntoStats folds a wall reading into an exported stat: serial and
// parallel runs would export different numbers.
func BadWallIntoStats(s *RunStats) {
	s.Elapsed = wallSeed() // want `value derived from the wall clock \(time.Now\) reaches stats accumulation field RunStats.Elapsed`
}

// GoodMapCountIntoStats accumulates a commutative total over a map:
// map-order taint is exempt at stats sinks, so only the determinism
// directive on the loop is needed.
func GoodMapCountIntoStats(s *RunStats, m map[uint64]int) {
	n := uint64(0)
	//simlint:ordered -- integer summation is commutative; the total is order-independent
	for k := range m {
		n += k
	}
	s.Elapsed = n
}

// GoodReportingWall reads the clock for reporting only: there is no sink
// on the flow, so no finding and no directive needed — this is exactly
// the case the old syntactic time.Now check over-reported.
func GoodReportingWall() string {
	return time.Now().Format(time.RFC3339)
}
