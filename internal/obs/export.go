package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// spanJSON is the JSONL line format. Identity fields are deterministic;
// start_ns/dur_ns are the wall-clock half, present for the slow-cell
// views and stripped by the canonical form.
type spanJSON struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Seq     uint64            `json:"seq,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
}

func hexID(v uint64) string { return fmt.Sprintf("%016x", v) }

func toJSON(sp Span) spanJSON {
	j := spanJSON{
		Trace:   hexID(sp.Trace),
		Span:    hexID(sp.ID),
		Name:    sp.Name,
		Seq:     sp.Seq,
		StartNs: sp.StartNs,
		DurNs:   sp.DurNs,
	}
	if sp.Parent != 0 {
		j.Parent = hexID(sp.Parent)
	}
	if len(sp.Attrs) > 0 {
		j.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			j.Attrs[a.K] = a.V // duplicate keys: last writer wins
		}
	}
	return j
}

func fromJSON(j spanJSON) (Span, error) {
	sp := Span{Name: j.Name, Seq: j.Seq, StartNs: j.StartNs, DurNs: j.DurNs}
	var err error
	if sp.Trace, err = strconv.ParseUint(j.Trace, 16, 64); err != nil {
		return sp, fmt.Errorf("obs: bad trace id %q: %w", j.Trace, err)
	}
	if sp.ID, err = strconv.ParseUint(j.Span, 16, 64); err != nil {
		return sp, fmt.Errorf("obs: bad span id %q: %w", j.Span, err)
	}
	if j.Parent != "" {
		if sp.Parent, err = strconv.ParseUint(j.Parent, 16, 64); err != nil {
			return sp, fmt.Errorf("obs: bad parent id %q: %w", j.Parent, err)
		}
	}
	for _, k := range sortedKeys(j.Attrs) {
		sp.Attrs = append(sp.Attrs, Attr{K: k, V: j.Attrs[k]})
	}
	return sp, nil
}

// WriteJSONL streams spans as JSON Lines in the given order (attribute
// keys sorted by encoding/json; span order is the caller's).
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, sp := range spans {
		if err := enc.Encode(toJSON(sp)); err != nil {
			return fmt.Errorf("obs: writing span %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span JSONL stream. Blank lines are tolerated;
// anything else that fails to parse is an error with its line number.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var j spanJSON
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		sp, err := fromJSON(j)
		if err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading spans: %w", err)
	}
	return out, nil
}

// SortCanonical orders spans by their deterministic identity — (trace,
// parent, name, seq, id) — erasing completion order, which is the only
// scheduling-dependent part of a span set.
func SortCanonical(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.ID < b.ID
	})
}

// CanonicalJSONL renders spans in their canonical byte form: wall-clock
// fields zeroed, spans sorted by deterministic identity. Two runs of the
// same campaign — any worker counts — canonicalize to identical bytes;
// the byte-identity regression suite pins exactly that.
func CanonicalJSONL(spans []Span) ([]byte, error) {
	canon := make([]Span, len(spans))
	copy(canon, spans)
	for i := range canon {
		canon[i].StartNs = 0
		canon[i].DurNs = 0
	}
	SortCanonical(canon)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, canon); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ChromeEvents converts spans to trace-event records loadable in Perfetto
// next to the PR 2 simulator tracks: each trace (campaign cell) gets its
// own named thread track, spans become complete ("X") events at
// microsecond granularity. Load the campaign file alongside a simscope
// -trace-out file and one timeline shows sim-internal and campaign-level
// activity together.
func ChromeEvents(spans []Span, pid int) []metrics.ChromeEvent {
	if pid == 0 {
		pid = 1
	}
	// Assign one tid per trace, in canonical (trace id) order with root
	// names as track labels.
	rootName := make(map[uint64]string)
	var traceIDs []uint64
	for _, sp := range spans {
		if _, ok := rootName[sp.Trace]; !ok {
			rootName[sp.Trace] = ""
			traceIDs = append(traceIDs, sp.Trace)
		}
		if sp.Root() {
			rootName[sp.Trace] = sp.Name
		}
	}
	sort.Slice(traceIDs, func(i, j int) bool { return traceIDs[i] < traceIDs[j] })
	tid := make(map[uint64]int, len(traceIDs))
	var out []metrics.ChromeEvent
	out = append(out, metrics.ChromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "campaign"},
	})
	for i, tr := range traceIDs {
		tid[tr] = i + 1
		name := rootName[tr]
		if name == "" {
			name = hexID(tr)
		}
		out = append(out, metrics.ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"trace": hexID(sp.Trace), "span": hexID(sp.ID)}
		for _, a := range sp.Attrs {
			args[a.K] = a.V
		}
		out = append(out, metrics.ChromeEvent{
			Name: sp.Name, Ph: "X",
			Ts:  uint64(sp.StartNs / 1000),
			Dur: uint64(sp.DurNs / 1000),
			Pid: pid, Tid: tid[sp.Trace], Cat: "campaign",
			Args: args,
		})
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
