// Package det is the determinism analyzer's golden input.
package det

import (
	"math/rand" // want `import of "math/rand": simulator randomness must flow through explicitly seeded internal/xrand generators`
	"sort"
	"time"
)

// BadSum iterates a map directly: order-dependent float accumulation.
func BadSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map m: iteration order is randomized`
		total += v
	}
	return total
}

// GoodSorted uses the collect-then-sort idiom and is not flagged.
func GoodSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodFiltered uses the filter-then-sort variant and is not flagged.
func GoodFiltered(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// GoodAnnotated carries an ordered directive with a justification.
func GoodAnnotated(m map[string]int) int {
	n := 0
	//simlint:ordered -- counting is commutative
	for range m {
		n++
	}
	return n
}

// BadUnsorted collects keys but never sorts them.
func BadUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m: iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

// BadClock reads the wall clock inside a simulation package.
func BadClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a simulation package`
}

// BadRand uses global math/rand state.
func BadRand() int {
	return rand.Int()
}
