// Command specfuzz is the countermeasure-fuzzing front end: it generates
// seeded speculative gadgets, runs each as a differential pair (secret=A
// vs secret=B) under every policy on the campaign worker pool, flags
// leaks that survive a defense, shrinks findings to reduced reproducers,
// and maintains a replayable corpus.
//
// Usage:
//
//	specfuzz run      -seed 1 -count 64 -cache .specfuzz -report report.json -corpus corpus.jsonl
//	specfuzz minimize -corpus corpus.jsonl -policy nonsecure -out reduced.jsonl
//	specfuzz corpus   -in corpus.jsonl -require-leak nonsecure -require-clean cleanupspec
//	specfuzz report   -in report.json
//	specfuzz report   -coverage -corpus corpus.jsonl
//
// A seeded run is fully deterministic: the same (seed, count, policies)
// triple produces byte-identical corpora and verdicts regardless of
// worker count, and an interrupted run resumes from the campaign cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/specfuzz"
	"repro/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "minimize":
		err = cmdMinimize(os.Args[2:])
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "specfuzz: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "specfuzz:", strings.TrimPrefix(err.Error(), "specfuzz: "))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  specfuzz run      [flags]   generate gadgets and fuzz every policy
  specfuzz minimize [flags]   shrink corpus gadgets to reduced reproducers
  specfuzz corpus   [flags]   replay a corpus and check its expectations
  specfuzz report   [flags]   render a run's JSON report as a table

run flags:
  -seed N             generation + hierarchy seed (default 1)
  -count N            gadgets to generate (default 64)
  -policies p,q       policies under test (default: all)
  -parallel N         worker count (default GOMAXPROCS = %d)
  -cache dir          campaign cell cache (default ".specfuzz"; "" = memory only)
  -report file        write the full JSON report
  -corpus file        write effective gadgets as a replayable JSONL corpus
  -q                  suppress progress lines
  -fail-on-survivor   exit nonzero if any leak survives a defense
  -min-effective N    exit nonzero unless ≥N gadgets leak on the baseline

minimize flags:
  -corpus file        input corpus (required)
  -policy p           policy the reproducer must keep leaking under (default nonsecure)
  -out file           write reduced corpus (default: stdout)

corpus flags:
  -in file            corpus to replay (required)
  -policies p,q       policies to replay under (default: those with expectations)
  -require-leak p     fail unless ≥1 entry leaks under policy p (repeatable via comma list)
  -require-clean p    fail if any entry leaks under policy p (comma list)
  -check-expect       fail on any expectation mismatch (default true)

report flags:
  -in file            JSON report from "specfuzz run"
  -corpus file        derive coverage from a JSONL corpus instead of a report
  -coverage           render the gadget-space coverage heatmap
                      (window × pattern × receiver × flush cells per policy,
                      with every unexplored cell named)

policies: %s
`, runtime.GOMAXPROCS(0), policyNames())
}

func policyNames() string {
	var names []string
	for _, p := range sim.Policies() {
		names = append(names, string(p))
	}
	return strings.Join(names, " ")
}

func parsePolicies(s string) ([]sim.Policy, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[sim.Policy]bool)
	for _, p := range sim.Policies() {
		known[p] = true
	}
	var out []sim.Policy
	for _, f := range strings.Split(s, ",") {
		p := sim.Policy(strings.TrimSpace(f))
		if p == "" {
			continue
		}
		if !known[p] {
			return nil, fmt.Errorf("unknown policy %q (valid: %s)", p, policyNames())
		}
		out = append(out, p)
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("specfuzz run", flag.ExitOnError)
	var (
		seed      = fs.Uint64("seed", 1, "generation + hierarchy seed")
		count     = fs.Int("count", 64, "gadgets to generate")
		policiesF = fs.String("policies", "", "comma-separated policies (default: all)")
		parallel  = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		cacheDir  = fs.String("cache", ".specfuzz", "campaign cell cache directory (empty = memory only)")
		reportOut = fs.String("report", "", "write the full JSON report to this file")
		corpusOut = fs.String("corpus", "", "write effective gadgets as JSONL corpus to this file")
		quiet     = fs.Bool("q", false, "suppress progress lines")
		failSurv  = fs.Bool("fail-on-survivor", false, "exit nonzero if any leak survives a defense")
		minEff    = fs.Int("min-effective", 0, "exit nonzero unless at least N gadgets leak on the unprotected baseline")
	)
	fs.Parse(args)

	policies, err := parsePolicies(*policiesF)
	if err != nil {
		return err
	}
	opts := specfuzz.Options{Seed: *seed, Count: *count, Policies: policies}

	eng := campaign.NewEngine()
	eng.Workers = *parallel
	if !*quiet {
		eng.Reporter = campaign.NewReporter(os.Stderr)
	}
	if *cacheDir != "" {
		cache, cerr := campaign.OpenCache(*cacheDir)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "specfuzz: warning: %v; running without a cache\n", cerr)
		} else {
			if !*quiet {
				cache.Warn = func(msg string) { fmt.Fprintln(os.Stderr, "specfuzz: warning:", msg) }
			}
			eng.Cache = cache
			m, ok := campaign.LoadManifest(*cacheDir)
			if !ok {
				m = campaign.NewManifest(*cacheDir, "specfuzz")
			}
			m.Grid = "specfuzz"
			eng.Manifest = m
		}
	}

	rep, err := specfuzz.Run(eng, opts)
	if err != nil {
		return err
	}
	printReport(rep)

	if *reportOut != "" {
		data, merr := json.MarshalIndent(rep, "", " ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(*reportOut, append(data, '\n'), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintln(os.Stderr, "specfuzz: wrote", *reportOut)
	}
	if *corpusOut != "" {
		entries := specfuzz.CorpusFromReport(rep, runPolicies(opts))
		if err := specfuzz.SaveCorpus(*corpusOut, entries); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "specfuzz: wrote %s (%d entries)\n", *corpusOut, len(entries))
	}

	if n := len(rep.Failures); n > 0 {
		return fmt.Errorf("%d cell(s) failed", n)
	}
	if *failSurv {
		if n := len(rep.Survivors()); n > 0 {
			return fmt.Errorf("%d leak(s) survived a defense", n)
		}
	}
	if *minEff > 0 {
		eff := 0
		for _, g := range rep.Gadgets {
			if g.Effective(runPolicies(opts)) {
				eff++
			}
		}
		if eff < *minEff {
			return fmt.Errorf("only %d gadget(s) effective on the baseline, want ≥%d", eff, *minEff)
		}
	}
	return nil
}

// runPolicies resolves the effective policy list of a run.
func runPolicies(opts specfuzz.Options) []sim.Policy {
	if len(opts.Policies) > 0 {
		return opts.Policies
	}
	return sim.Policies()
}

func printReport(rep specfuzz.Report) {
	fmt.Printf("specfuzz: seed %d, %d gadgets × %d policies\n", rep.Seed, rep.Count, len(rep.Policies))
	fmt.Printf("%-22s %8s %8s %8s %8s\n", "policy", "cells", "leaks", "timing", "state")
	for _, s := range rep.Summary {
		fmt.Printf("%-22s %8d %8d %8d %8d\n", s.Policy, s.Gadgets, s.Leaks, s.TimingLeaks, s.StateLeaks)
	}
	surv := rep.Survivors()
	if len(surv) == 0 {
		fmt.Println("no leaks survive any defense")
		return
	}
	fmt.Printf("%d leak(s) SURVIVE a defense:\n", len(surv))
	for _, v := range surv {
		fmt.Printf("  %s under %s via %s (max Δ %d cycles, %d state diffs)\n",
			v.Gadget, v.Policy, strings.Join(v.Channels, "+"), v.MaxTimingDelta, len(v.StateDiffs))
	}
}

func cmdMinimize(args []string) error {
	fs := flag.NewFlagSet("specfuzz minimize", flag.ExitOnError)
	var (
		corpusIn = fs.String("corpus", "", "input corpus (required)")
		policyF  = fs.String("policy", string(sim.NonSecure), "policy the reproducer must keep leaking under")
		outF     = fs.String("out", "", "write reduced corpus to this file (default: stdout)")
	)
	fs.Parse(args)
	if *corpusIn == "" {
		return fmt.Errorf("minimize: -corpus is required")
	}
	pols, err := parsePolicies(*policyF)
	if err != nil {
		return err
	}
	if len(pols) != 1 {
		return fmt.Errorf("minimize: -policy must name exactly one policy")
	}
	entries, err := specfuzz.LoadCorpus(*corpusIn)
	if err != nil {
		return err
	}
	var reduced []specfuzz.CorpusEntry
	for _, e := range entries {
		mr, merr := specfuzz.Minimize(e.Spec, sim.Config{Policy: pols[0], Seed: e.Seed})
		if merr != nil {
			fmt.Fprintf(os.Stderr, "specfuzz: %s: %v (kept as is)\n", e.Spec.ID, merr)
			reduced = append(reduced, e)
			continue
		}
		fmt.Fprintf(os.Stderr, "specfuzz: %s: %d reduction(s) in %d trial(s)\n", e.Spec.ID, mr.Steps, mr.Trials)
		reduced = append(reduced, specfuzz.CorpusEntry{
			Spec: mr.Reduced,
			Seed: e.Seed,
			Expect: []specfuzz.Expectation{
				{Policy: mr.Verdict.Policy, Leak: true, Channels: mr.Verdict.Channels},
			},
		})
	}
	if *outF == "" {
		return specfuzz.WriteCorpus(os.Stdout, reduced)
	}
	if err := specfuzz.SaveCorpus(*outF, reduced); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "specfuzz: wrote %s (%d entries)\n", *outF, len(reduced))
	return nil
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("specfuzz corpus", flag.ExitOnError)
	var (
		inF          = fs.String("in", "", "corpus to replay (required)")
		policiesF    = fs.String("policies", "", "policies to replay under (default: those with expectations)")
		requireLeak  = fs.String("require-leak", "", "fail unless ≥1 entry leaks under each of these policies")
		requireClean = fs.String("require-clean", "", "fail if any entry leaks under one of these policies")
		checkExpect  = fs.Bool("check-expect", true, "fail on any expectation mismatch")
	)
	fs.Parse(args)
	if *inF == "" {
		return fmt.Errorf("corpus: -in is required")
	}
	entries, err := specfuzz.LoadCorpus(*inF)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("corpus: %s has no entries", *inF)
	}

	policies, err := parsePolicies(*policiesF)
	if err != nil {
		return err
	}
	mustLeak, err := parsePolicies(*requireLeak)
	if err != nil {
		return err
	}
	mustClean, err := parsePolicies(*requireClean)
	if err != nil {
		return err
	}
	if len(policies) == 0 {
		policies = expectedPolicies(entries, mustLeak, mustClean)
	}
	if len(policies) == 0 {
		return fmt.Errorf("corpus: no policies to replay (no expectations recorded; pass -policies)")
	}

	rep := specfuzz.Replay(entries, policies)
	fmt.Printf("specfuzz: replayed %d entries under %d policies\n", len(entries), len(policies))
	for _, p := range rep.Policies {
		fmt.Printf("%-22s %d/%d leak\n", p.Policy, p.Leaks, p.Entries)
	}
	for _, m := range rep.Mismatches {
		fmt.Println("mismatch:", m)
	}
	for _, f := range rep.Failures {
		fmt.Println("failure:", f)
	}

	var problems []string
	if len(rep.Failures) > 0 {
		problems = append(problems, fmt.Sprintf("%d replay failure(s)", len(rep.Failures)))
	}
	if *checkExpect && len(rep.Mismatches) > 0 {
		problems = append(problems, fmt.Sprintf("%d expectation mismatch(es)", len(rep.Mismatches)))
	}
	for _, p := range mustLeak {
		if n := rep.Leaks(string(p)); n == 0 {
			problems = append(problems, fmt.Sprintf("no entry leaks under %s (expected ≥1)", p))
		} else if n < 0 {
			problems = append(problems, fmt.Sprintf("policy %s was not replayed", p))
		}
	}
	for _, p := range mustClean {
		if n := rep.Leaks(string(p)); n > 0 {
			problems = append(problems, fmt.Sprintf("%d entr(ies) leak under %s (expected 0)", n, p))
		} else if n < 0 {
			problems = append(problems, fmt.Sprintf("policy %s was not replayed", p))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("corpus check failed: %s", strings.Join(problems, "; "))
	}
	fmt.Println("corpus OK")
	return nil
}

// expectedPolicies derives the replay policy set from recorded
// expectations plus any -require-* policies, in stable order.
func expectedPolicies(entries []specfuzz.CorpusEntry, extra ...[]sim.Policy) []sim.Policy {
	seen := make(map[sim.Policy]bool)
	for _, e := range entries {
		for _, x := range e.Expect {
			seen[sim.Policy(x.Policy)] = true
		}
	}
	for _, list := range extra {
		for _, p := range list {
			seen[p] = true
		}
	}
	var out []sim.Policy
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("specfuzz report", flag.ExitOnError)
	inF := fs.String("in", "", "JSON report from \"specfuzz run\"")
	corpusF := fs.String("corpus", "", "derive coverage from this JSONL corpus instead of a report")
	coverage := fs.Bool("coverage", false, "render the gadget-space coverage heatmap (window × pattern × receiver × flush)")
	fs.Parse(args)

	var rep specfuzz.Report
	var cov specfuzz.Coverage
	switch {
	case *inF != "":
		data, err := os.ReadFile(*inF)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("report: parsing %s: %w", *inF, err)
		}
		cov = rep.Coverage
		if cov == nil {
			// Reports from before coverage landed still render: derive it.
			cov = specfuzz.CoverageFromReport(rep)
		}
	case *corpusF != "":
		if !*coverage {
			return fmt.Errorf("report: -corpus only renders coverage (pass -coverage)")
		}
		entries, err := specfuzz.LoadCorpus(*corpusF)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return fmt.Errorf("report: corpus %s has no entries", *corpusF)
		}
		cov = specfuzz.CoverageFromEntries(entries)
	default:
		return fmt.Errorf("report: -in or -corpus is required")
	}

	if *coverage {
		cov.WriteHeatmap(os.Stdout)
		return nil
	}
	printReport(rep)
	for _, f := range rep.Failures {
		fmt.Println("failure:", f)
	}
	return nil
}
