// Command benchrun records and gates perf baselines for the repository's
// core-loop benchmarks (the substrate microbenchmarks in bench_test.go).
//
//	benchrun record -out BENCH_PR6.json      # run + write a baseline
//	benchrun diff BENCH_PR6.json             # run + compare, exit 1 on regression
//	benchrun diff BENCH_PR6.json -threshold 0.75 -alloc-slack 0
//	benchrun diff BENCH_PR6.json -handicap BenchmarkCacheLookup=2   # gate self-test
//
// `record` is also the default when no subcommand is given (bare flags),
// so existing invocations keep working.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchrun"
)

// defaultPattern selects the substrate microbenchmarks — the hot loops
// every simulation runs through — rather than the table/figure
// regeneration benchmarks, whose runtimes are experiment-shaped.
const defaultPattern = "^(BenchmarkCacheLookup|BenchmarkCEASEREncrypt|BenchmarkPredictor|BenchmarkSimulatorThroughput)$"

func main() {
	args := os.Args[1:]
	cmd := "record"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "record":
		runRecord(args)
	case "diff":
		runDiff(args)
	default:
		fmt.Fprintf(os.Stderr, "benchrun: unknown subcommand %q (want record or diff)\n", cmd)
		os.Exit(2)
	}
}

// benchFlags are the flags record and diff share: how to run the fresh
// benchmarks.
func benchFlags(fs *flag.FlagSet) (dir, pattern, benchTime *string) {
	dir = fs.String("dir", ".", "package directory containing bench_test.go")
	pattern = fs.String("bench", defaultPattern, "benchmark selection regexp")
	benchTime = fs.String("benchtime", "0.3s", "per-benchmark measuring time")
	return
}

func runBenches(dir, pattern, benchTime string) ([]benchrun.Result, benchrun.Options) {
	opts := benchrun.Options{Dir: dir, Pattern: pattern, BenchTime: benchTime}
	fmt.Fprintf(os.Stderr, "benchrun: running %s (benchtime %s)\n", pattern, benchTime)
	results, err := benchrun.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "benchrun: %-32s %12.0f ops/s %10.0f allocs/op\n", r.Name, r.OpsPerSec, r.AllocsPerOp)
	}
	return results, opts
}

func runRecord(args []string) {
	fs := flag.NewFlagSet("benchrun record", flag.ExitOnError)
	dir, pattern, benchTime := benchFlags(fs)
	out := fs.String("out", "BENCH_PR6.json", `baseline file ("-" = stdout)`)
	fs.Parse(args)

	results, opts := runBenches(*dir, *pattern, *benchTime)
	baseline := benchrun.NewBaseline(opts, results, time.Now())
	data, err := json.MarshalIndent(baseline, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchrun: wrote", *out)
}

func runDiff(args []string) {
	fs := flag.NewFlagSet("benchrun diff", flag.ExitOnError)
	dir, pattern, benchTime := benchFlags(fs)
	threshold := fs.Float64("threshold", 0.25, "allowed fractional ns/op slowdown (0.25 = 25%)")
	allocSlack := fs.Float64("alloc-slack", 0, "allowed absolute allocs/op increase")
	allocRatio := fs.Float64("alloc-ratio", 0.01, "allowed fractional allocs/op increase (0 for zero-alloc benchmarks regardless)")
	perBench := fs.String("per", "", "per-benchmark threshold overrides, Name=ratio[,Name=ratio...]")
	handicap := fs.String("handicap", "", "synthetic slowdown for gate self-tests, Name=factor[,...]")
	jsonOut := fs.Bool("json", false, "emit the diff report as JSON instead of a table")
	// Accept the baseline path on either side of the flags:
	// `diff BENCH_PR6.json -threshold 0.5` and `diff -threshold 0.5 BENCH_PR6.json`.
	var baselinePath string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		baselinePath, args = args[0], args[1:]
	}
	fs.Parse(args)
	switch {
	case baselinePath == "" && fs.NArg() == 1:
		baselinePath = fs.Arg(0)
	case baselinePath != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(os.Stderr, "usage: benchrun diff [flags] <baseline.json>")
		os.Exit(2)
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	var base benchrun.Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: parsing baseline %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	if len(base.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchrun: baseline %s has no results\n", baselinePath)
		os.Exit(1)
	}
	// Default the selection to the baseline's own pattern, so the fresh
	// run measures exactly the benchmarks the baseline gates.
	benchPat := *pattern
	if benchPat == defaultPattern && base.Pattern != "" {
		benchPat = base.Pattern
	}

	results, _ := runBenches(*dir, benchPat, *benchTime)
	if factors, ferr := parsePairs(*handicap, "handicap"); ferr != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", ferr)
		os.Exit(2)
	} else if len(factors) > 0 {
		fmt.Fprintf(os.Stderr, "benchrun: applying synthetic handicap %s\n", *handicap)
		results = benchrun.Handicap(results, factors)
	}

	per, err := parsePairs(*perBench, "per")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}
	th := benchrun.Thresholds{TimeRatio: *threshold, AllocSlack: *allocSlack, AllocRatio: *allocRatio, PerBench: per}
	rep := benchrun.Diff(base, results, th)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
	} else {
		rep.Write(os.Stdout)
	}
	if rep.Regressed() {
		os.Exit(1)
	}
}

// parsePairs parses "Name=1.5,Other=2" into a map.
func parsePairs(s, what string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -%s entry %q (want Name=value)", what, part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s value in %q: %v", what, part, err)
		}
		out[name] = f
	}
	return out, nil
}
