package specfuzz

import (
	"fmt"

	"repro/internal/campaign"
	"repro/sim"
)

// Options parameterizes one fuzzing campaign.
type Options struct {
	// Seed drives gadget generation and is also the hierarchy seed of
	// every oracle run, so a (Seed, Count, Policies) triple names the
	// campaign's entire cell grid.
	Seed uint64
	// Count is how many gadgets to generate.
	Count int
	// Policies are the defenses under test, in report order. Empty means
	// every policy the simulator knows.
	Policies []sim.Policy
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Count <= 0 {
		o.Count = 32
	}
	if len(o.Policies) == 0 {
		o.Policies = sim.Policies()
	}
	return o
}

// GadgetReport pairs one gadget with its verdicts, in Options.Policies
// order (nil where that cell failed).
type GadgetReport struct {
	Spec     GadgetSpec `json:"spec"`
	Verdicts []*Verdict `json:"verdicts"`
}

// Effective reports whether the gadget leaks on the unprotected baseline —
// a gadget that does not even beat "no defense" makes no statement about
// any defense.
func (g GadgetReport) Effective(policies []sim.Policy) bool {
	for i, p := range policies {
		if p == sim.NonSecure && i < len(g.Verdicts) && g.Verdicts[i] != nil {
			return g.Verdicts[i].Leak
		}
	}
	return false
}

// PolicySummary aggregates one policy's column of the campaign.
type PolicySummary struct {
	Policy string `json:"policy"`
	// Gadgets is how many cells completed for this policy.
	Gadgets int `json:"gadgets"`
	// Leaks is how many of them leaked (for the unprotected baseline
	// this is the count of effective gadgets; for a defense it is the
	// count of survivors).
	Leaks int `json:"leaks"`
	// TimingLeaks/StateLeaks split Leaks by channel (a leak can be
	// both).
	TimingLeaks int `json:"timing_leaks"`
	StateLeaks  int `json:"state_leaks"`
}

// Report is the full outcome of a fuzzing campaign.
type Report struct {
	Seed     uint64   `json:"seed"`
	Count    int      `json:"count"`
	Policies []string `json:"policies"`

	Gadgets []GadgetReport  `json:"gadgets"`
	Summary []PolicySummary `json:"summary"`

	// Failures lists cells that errored, as "gadget/policy: error".
	Failures []string `json:"failures,omitempty"`
	// CacheHits counts cells served from the campaign cache.
	CacheHits int `json:"cache_hits"`

	// Coverage maps each policy to the gadget-space cells (window ×
	// pattern × receiver × flush) this campaign explored; see Coverage.
	Coverage Coverage `json:"coverage,omitempty"`
}

// Survivors returns the (gadget, policy) pairs where a leak survived an
// actual defense: the campaign's findings. Baseline leaks are expected —
// they establish gadget efficacy, not defense failure.
func (r Report) Survivors() []Verdict {
	var out []Verdict
	for _, g := range r.Gadgets {
		for _, v := range g.Verdicts {
			if v != nil && v.Leak && v.Policy != string(sim.NonSecure) {
				out = append(out, *v)
			}
		}
	}
	return out
}

// Jobs expands (specs × policies) into the campaign cell grid, in
// deterministic (gadget-major, policy-minor) order.
func Jobs(specs []GadgetSpec, policies []sim.Policy, seed uint64) ([]campaign.Job, error) {
	jobs := make([]campaign.Job, 0, len(specs)*len(policies))
	for _, s := range specs {
		for _, p := range policies {
			j, err := NewJob(s, p, seed)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// Run executes a fuzzing campaign on the given engine: generate the
// gadgets, expand the cell grid, run it on the worker pool (memoized,
// cached, resumable), and fold the verdicts into a report. The engine may
// carry a cache, manifest, and reporter exactly like a simulation
// campaign; Register is called here, so callers only wire the engine.
func Run(e *campaign.Engine, opts Options) (Report, error) {
	opts = opts.withDefaults()
	Register(e)

	specs := Generate(opts.Seed, opts.Count)
	jobs, err := Jobs(specs, opts.Policies, opts.Seed)
	if err != nil {
		return Report{}, err
	}
	results := e.Run(jobs)

	rep := Report{Seed: opts.Seed, Count: opts.Count}
	for _, p := range opts.Policies {
		rep.Policies = append(rep.Policies, string(p))
	}
	summary := make([]PolicySummary, len(opts.Policies))
	for i, p := range opts.Policies {
		summary[i].Policy = string(p)
	}

	for gi, s := range specs {
		gr := GadgetReport{Spec: s, Verdicts: make([]*Verdict, len(opts.Policies))}
		for pi := range opts.Policies {
			jr := results[gi*len(opts.Policies)+pi]
			if jr.Cached {
				rep.CacheHits++
			}
			if jr.Err != nil {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", jr.Job, jr.Err))
				continue
			}
			v, derr := DecodeVerdict(jr.Aux)
			if derr != nil {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %v", jr.Job, derr))
				continue
			}
			gr.Verdicts[pi] = &v
			summary[pi].Gadgets++
			if v.Leak {
				summary[pi].Leaks++
			}
			for _, ch := range v.Channels {
				switch ch {
				case "timing":
					summary[pi].TimingLeaks++
				case "state":
					summary[pi].StateLeaks++
				default:
					// Unknown channel names pass through uncounted.
				}
			}
		}
		rep.Gadgets = append(rep.Gadgets, gr)
	}
	rep.Summary = summary
	rep.Coverage = CoverageFromReport(rep)
	return rep, nil
}
