// Package core implements CleanupSpec, the paper's primary contribution: an
// Undo approach to safe speculation. Speculative loads access and modify
// the caches normally; when a mis-speculation is detected, the changes the
// squashed loads made are rolled back (L1 installs invalidated and their
// eviction victims restored), invalidated (randomized L2 installs), or were
// never allowed transiently in the first place (coherence downgrades via
// GetS-Safe, clflush at commit, replacement state via L1 random replacement
// and L2 randomization).
//
// The policy plugs into the cpu.Machine's Policy interface; the intended
// hierarchy configuration (randomized L2, random-replacement L1, spec-window
// protection) is produced by HierarchyConfig.
package core

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/metrics"
)

// Config tunes the CleanupSpec policy.
type Config struct {
	// ConstantTimeCleanup, when non-zero, pads every cleanup stall to at
	// least this many cycles — the constant-time hardening the paper's
	// Section 4(b) leaves to future work. Zero disables padding.
	ConstantTimeCleanup arch.Cycle
	// DisableRestore turns off victim restoration, leaving only
	// invalidation — the naive design of Section 2.4.1 that remains
	// vulnerable to Prime+Probe. It exists for the ablation benches and
	// security tests; production configurations must keep it false.
	DisableRestore bool
	// UseGetSSafe delays speculative loads that would downgrade a remote
	// M/E line (Section 3.5). On by default via New.
	UseGetSSafe bool
}

// WindowExtensionPeriod is how long a speculatively installed line's SEFE
// stays active before the core must send an extension message (Section 3.6:
// ">98% of loads commit/squash within 200 cycles").
const WindowExtensionPeriod arch.Cycle = 200

// Stats counts cleanup activity (Figures 13-15, Table 5).
type Stats struct {
	Cleanups            uint64 // squashes processed
	CleanupFreeSquashes uint64 // squashes needing zero cleanup operations
	InvalidationsL1     uint64
	InvalidationsL2     uint64
	Restores            uint64
	SkippedLive         uint64 // ops skipped: line justified by live loads
	SkippedNonSpec      uint64 // ops skipped: spec mark already cleared
	DroppedInflight     uint64 // squashed loads whose fills were dropped
	ExecutedCleaned     uint64 // squashed loads that needed cleanup ops
	WindowExtensions    uint64 // SEFE keep-alive messages (Section 3.6)
	LoadsObserved       uint64 // committed loads (extension-rate denominator)
}

// CleanupSpec is the Undo policy (implements cpu.Policy).
type CleanupSpec struct {
	cfg Config

	Stats Stats

	restoreLat *metrics.Histogram // nil unless AttachMetrics was called
}

// New returns a CleanupSpec policy with the paper's configuration.
func New() *CleanupSpec {
	return &CleanupSpec{cfg: Config{UseGetSSafe: true}}
}

// NewWithConfig returns a CleanupSpec policy with explicit knobs (ablations
// and security tests).
func NewWithConfig(cfg Config) *CleanupSpec {
	return &CleanupSpec{cfg: cfg}
}

// HierarchyConfig converts a base hierarchy configuration into the one
// CleanupSpec requires: random replacement for the L1 (Section 3.2), CEASER
// randomization for the L2, and speculation-window protection (Section 3.6).
func HierarchyConfig(base memsys.Config) memsys.Config {
	base.L1.Repl = cache.ReplRandom
	base.RandomizeL2 = true
	base.ProtectSpecWindow = true
	return base
}

// Name implements cpu.Policy.
func (p *CleanupSpec) Name() string { return "cleanupspec" }

// Mode implements cpu.Policy: loads proceed normally, with GetS-Safe
// coherence for speculative ones.
func (p *CleanupSpec) Mode(m *cpu.Machine, e *cpu.LQEntry, spec bool) cpu.LoadMode {
	if p.cfg.UseGetSSafe && spec {
		return cpu.LoadNormalSafe
	}
	return cpu.LoadNormal
}

// DeferWakeupUntilVisible implements cpu.Policy: CleanupSpec forwards
// speculative data to dependents immediately.
func (p *CleanupSpec) DeferWakeupUntilVisible() bool { return false }

// OnLoadUnsquashable implements cpu.Policy (no action: window marks are
// cleared by the machine at commit).
func (p *CleanupSpec) OnLoadUnsquashable(*cpu.Machine, *cpu.LQEntry) {}

// OnLoadNearCommit implements cpu.Policy (no commit-time work).
func (p *CleanupSpec) OnLoadNearCommit(*cpu.Machine, *cpu.LQEntry) {}

// CommitWait implements cpu.Policy: correctly speculated loads retire with
// no extra work — the entire point of the Undo approach.
func (p *CleanupSpec) CommitWait(*cpu.Machine, *cpu.LQEntry) arch.Cycle { return 0 }

// OnLoadCommitted implements cpu.Policy: loads that stayed speculative
// beyond WindowExtensionPeriod sent keep-alive messages so their L2-MSHR
// SEFEs stayed active for cross-core window protection (Section 3.6); the
// paper bounds these at <2% of cache traffic.
func (p *CleanupSpec) OnLoadCommitted(m *cpu.Machine, e *cpu.LQEntry) {
	p.Stats.LoadsObserved++
	if !e.Issued || e.IssuedAt == 0 || e.IssuedAt > m.Now() {
		// The IssuedAt > Now arm is unreachable (issue precedes commit);
		// it makes the subtraction below provably wrap-free.
		return
	}
	if alive := m.Now() - e.IssuedAt; alive > WindowExtensionPeriod {
		p.Stats.WindowExtensions += uint64(alive / WindowExtensionPeriod)
	}
}

// ExtensionRate returns window-extension messages per committed load.
func (p *CleanupSpec) ExtensionRate() float64 {
	if p.Stats.LoadsObserved == 0 {
		return 0
	}
	return float64(p.Stats.WindowExtensions) / float64(p.Stats.LoadsObserved)
}

// DropSquashedInflight implements cpu.Policy: in-flight fills of squashed
// loads are dropped when the data returns (Section 3.3).
func (p *CleanupSpec) DropSquashedInflight() bool { return true }

// OnSquash implements cpu.Policy: the cleanup itself (Figure 8b).
//
// The machine has already rolled back architectural state and marked stale
// in-flight MSHR entries for dropping. This routine (1) waits for older
// in-flight correct-path loads, (2) undoes the cache changes of executed
// squashed loads in reverse fill order — invalidating installs and
// restoring L1 eviction victims — and (3) returns the front-end stall.
func (p *CleanupSpec) OnSquash(m *cpu.Machine, squashed []cpu.SquashedLoad) cpu.SquashCost {
	p.Stats.Cleanups++
	h := m.Hierarchy()
	coreID := m.CoreID()

	// (1) Wait for in-flight correct-path loads to complete before any
	// cleanup may begin, preventing interference and nested
	// mis-speculation (Section 3.4). The wait applies to *every* squash
	// — the structure must quiesce before the SEFEs can be trusted —
	// which is why it dominates Figure 14's per-squash stall.
	inflightWait := m.OlderInflightWait()

	// Partition the squashed loads.
	var ops []cpu.SquashedLoad
	for _, sl := range squashed {
		switch {
		case sl.Inflight:
			p.Stats.DroppedInflight++
		case sl.Completed && (sl.SEFE.L1Fill || sl.SEFE.L2Fill):
			//simlint:allow hotalloc -- cleanup worklist, bounded by the LQ size and built once per squash event, not per cycle
			ops = append(ops, sl)
		}
	}
	if len(ops) == 0 {
		p.Stats.CleanupFreeSquashes++
		cost := cpu.SquashCost{InflightWait: inflightWait}
		if p.cfg.ConstantTimeCleanup > 0 {
			cost.CleanupOps = p.cfg.ConstantTimeCleanup
		}
		return cost
	}

	// (2) Undo the executed transient changes.
	//simlint:allow hotalloc -- one exact-capacity batch per squash with executed transient loads; per-squash, bounded by the LQ size
	batch := make([]CleanupOp, 0, len(ops))
	for _, sl := range ops {
		//simlint:allow hotalloc -- capacity was reserved on the line above; this append never grows
		batch = append(batch, CleanupOp{Line: sl.Line, SEFE: sl.SEFE, FillOrder: sl.FillOrder})
	}
	nInval, restoreFinish := p.cleanupBatch(h, coreID, m.OwnerID(), batch, m.LineReferencedByLiveLoad, m.Now())

	// (3) Stall: invalidations pipeline at one per cycle and overlap with
	// the restores' L2 accesses.
	//simlint:allow cyclemath -- nInval counts invalidations performed by cleanupBatch; a count is never negative
	cleanup := arch.Cycle(nInval)
	if restoreFinish > cleanup {
		cleanup = restoreFinish
	}
	if p.cfg.ConstantTimeCleanup > 0 && cleanup < p.cfg.ConstantTimeCleanup {
		cleanup = p.cfg.ConstantTimeCleanup
	}
	return cpu.SquashCost{InflightWait: inflightWait, CleanupOps: cleanup}
}

// CleanupOp describes one executed squashed load whose cache changes must
// be undone: the line it installed, its SEFE, and its position in fill
// order.
type CleanupOp struct {
	Line      arch.LineAddr
	SEFE      cache.SEFE
	FillOrder uint64
}

// CleanupBatch undoes a batch of transient installs in reverse fill order
// (reverse LoadID, Section 3.4): each still-speculative install is
// invalidated from the L1 (and, if it filled there, the randomized L2) and
// its recorded L1 eviction victim is restored into the exact way it was
// evicted from. live reports lines that non-squashed loads also justify
// (those are preserved). It returns the number of invalidations and the
// cycle offset at which the pipelined restores finish.
//
// The subtlety the reverse order plus the batch map handle: a restore can
// legitimately reintroduce a line that an *older* squashed load installed
// (it was the victim of a younger squashed install); that line has lost its
// speculative mark but must still be invalidated by its own load's cleanup.
func (p *CleanupSpec) CleanupBatch(h *memsys.Hierarchy, coreID int, ops []CleanupOp, live func(arch.LineAddr) bool, now arch.Cycle) (nInval int, restoreFinish arch.Cycle) {
	return p.cleanupBatch(h, coreID, memsys.SMTID(coreID, 0), ops, live, now)
}

func (p *CleanupSpec) cleanupBatch(h *memsys.Hierarchy, coreID, owner int, ops []CleanupOp, live func(arch.LineAddr) bool, now arch.Cycle) (nInval int, restoreFinish arch.Cycle) {
	//simlint:allow hotalloc -- sort.Slice boxes the slice and closure once per cleanup batch; per-squash cost on a worklist bounded by the LQ size
	sort.Slice(ops, func(i, j int) bool { return ops[i].FillOrder > ops[j].FillOrder })

	//simlint:allow hotalloc -- per-squash scratch map sized to the cleanup batch; squashes are events, not cycles
	installedByBatch := make(map[arch.LineAddr]bool, len(ops))
	for _, op := range ops {
		if op.SEFE.L1Fill {
			installedByBatch[op.Line] = true
		}
	}
	//simlint:allow hotalloc -- per-squash scratch map; holds at most one entry per restored victim in the batch
	batchRestored := make(map[arch.LineAddr]bool)

	// nRestores is a pipelining offset in cycles (one new restore starts
	// per cycle), so it carries the cycle type directly — no signed->Cycle
	// conversion at the use site.
	var nRestores arch.Cycle
	for _, op := range ops {
		p.Stats.ExecutedCleaned++
		// Preserve changes that correct-path execution also justifies
		// (Section 3.4, "Squashing Loads Re-ordered with Correct-Path
		// Loads").
		if live != nil && live(op.Line) {
			p.Stats.SkippedLive++
			continue
		}
		if op.SEFE.L1Fill {
			spec, by := h.L1(coreID).SpecInfo(op.Line)
			if (spec && by == owner) || batchRestored[op.Line] {
				if h.CleanupInvalidateL1(coreID, op.Line) {
					p.Stats.InvalidationsL1++
					nInval++
				}
				if !p.cfg.DisableRestore && op.SEFE.L1EvictValid {
					lat := h.RestoreL1(coreID, op.SEFE, now)
					if lat > 0 {
						p.Stats.Restores++
						if p.restoreLat != nil {
							p.restoreLat.Observe(uint64(lat))
						}
						if installedByBatch[op.SEFE.L1EvictAddr] {
							batchRestored[op.SEFE.L1EvictAddr] = true
						}
						// Restores are pipelined on the L2 port: one
						// new restore per cycle, each taking its own
						// latency.
						fin := nRestores + lat
						if fin > restoreFinish {
							restoreFinish = fin
						}
						nRestores++
					}
				}
			} else {
				p.Stats.SkippedNonSpec++
			}
		}
		if op.SEFE.L2Fill {
			if spec, by := h.L2().SpecInfo(op.Line); spec && by == owner {
				if h.CleanupInvalidateL2(op.Line) {
					p.Stats.InvalidationsL2++
					nInval++
				}
			}
		}
	}
	return nInval, restoreFinish
}

// StorageBitsPerCore returns the SEFE storage CleanupSpec adds per core for
// the given queue/MSHR sizes (Section 6.6): one LQ-format SEFE per LQ and
// L1-MSHR entry, one short SEFE per L2-MSHR entry.
func StorageBitsPerCore(lqEntries, l1MSHRs, l2MSHRs int) int {
	return (lqEntries+l1MSHRs)*cache.StorageBitsLQ + l2MSHRs*cache.StorageBitsL2
}
