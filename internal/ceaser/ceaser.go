// Package ceaser implements CEASER-style randomized cache indexing
// (Qureshi, MICRO 2018): the set index is computed from an *encrypted* line
// address, so spatially related lines map to unrelated sets and an eviction
// leaks no information about the address of the install that caused it.
//
// CleanupSpec (Section 3.2) uses this for the shared L2 (and directory),
// which is what makes L2 evictions benign and lets the Undo approach skip
// buffering or restoring L2 evictions entirely. The paper charges 2 cycles
// of address-encryption latency per L2 access; that figure is carried here
// as ExtraLatency and added by the memory system.
//
// The cipher is a 4-round Feistel network over the 40-bit line address.
// A Feistel network is a bijection by construction for any round function,
// which is the property CEASER relies on (every line still has exactly one
// set). Decrypt exists to let tests verify bijectivity.
package ceaser

import (
	"repro/internal/arch"
	"repro/internal/xrand"
)

// EncryptLatency is the extra access latency charged for address
// encryption, per the paper's Section 3.2 / Table 4 (2 cycles).
const EncryptLatency arch.Cycle = 2

const (
	halfBits = arch.LineAddrBits / 2 // 20
	halfMask = (1 << halfBits) - 1
	rounds   = 4
)

// Indexer is a randomized set indexer implementing cache.Indexer. It also
// carries the dynamic-remap state (see remap.go): a next key and the set
// pointer SPtr that walks the cache during a remap epoch.
type Indexer struct {
	sets      uint64
	keys      [rounds]uint64
	nextKeys  [rounds]uint64
	sptr      int
	remapping bool

	// Remaps counts completed key changes (instant Rekey calls and
	// finished gradual remap epochs).
	Remaps uint64
}

// New builds an indexer for the given number of sets, keyed from seed.
func New(sets int, seed uint64) *Indexer {
	ix := &Indexer{sets: uint64(sets)}
	ix.rekeyFrom(seed)
	return ix
}

func (ix *Indexer) rekeyFrom(seed uint64) {
	r := xrand.New(seed ^ 0xCEA5E4)
	for i := range ix.keys {
		ix.keys[i] = r.Uint64()
	}
}

// Rekey installs a fresh key (a CEASER remap epoch). Lines already resident
// are left where they are; the simulator models the security property of
// remapping, not its gradual relocation machinery.
func (ix *Indexer) Rekey(seed uint64) {
	ix.rekeyFrom(seed)
	ix.Remaps++
}

// round is the Feistel round function: a keyed 64-bit mix truncated to a
// half-width value. It need not be invertible.
func round(half, key uint64) uint64 {
	return xrand.Hash64(half^key) & halfMask
}

// Encrypt maps a line address to its encrypted image under the current
// key, a bijection over the low arch.LineAddrBits bits. Bits above
// LineAddrBits are folded into the low bits first so the full address
// still influences the index.
func (ix *Indexer) Encrypt(l arch.LineAddr) uint64 {
	return ix.encryptWith(ix.keys, l)
}

// Decrypt inverts Encrypt (over the folded 40-bit domain); it exists so
// tests can prove the mapping is a bijection.
func (ix *Indexer) Decrypt(e uint64) uint64 {
	left, right := e>>halfBits, e&halfMask
	for i := rounds - 1; i >= 0; i-- {
		left, right = right^round(left, ix.keys[i]), left
	}
	return left<<halfBits | right
}

// SetIndex implements cache.Indexer. During a remap epoch, lines whose
// current-key set has already been relocated (set < SPtr) index under the
// next key.
func (ix *Indexer) SetIndex(l arch.LineAddr) int {
	s := int(ix.Encrypt(l) % ix.sets)
	if ix.remapping && s < ix.sptr {
		return ix.NextIndex(l)
	}
	return s
}

// Sets implements cache.Indexer.
func (ix *Indexer) Sets() int { return int(ix.sets) }

// Name implements cache.Indexer.
func (ix *Indexer) Name() string { return "ceaser" }

// ExtraLatency implements cache.Indexer.
func (ix *Indexer) ExtraLatency() arch.Cycle { return EncryptLatency }
