package metrics

// Sample is one interval snapshot: the cumulative counter values and the
// instantaneous gauge readings at a (measurement-window-relative) cycle.
// Counters are cumulative, not per-interval, so the final sample of a run
// agrees exactly with the end-of-run aggregates; consumers derive
// per-interval rates by differencing consecutive samples (see Rates).
type Sample struct {
	Cycle    uint64             `json:"cycle"`
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Sampler snapshots a registry every Every cycles. It is driven by the
// core's cycle loop (cpu.Machine calls Tick once per cycle with the
// window-relative cycle number) and flushed once at the end of the run so
// the final, possibly partial interval is never lost. A nil *Sampler is a
// valid disabled sampler: Tick and Flush are no-ops.
type Sampler struct {
	reg     *Registry
	every   uint64
	next    uint64
	samples []Sample
}

// NewSampler creates a sampler that snapshots reg every `every` cycles.
// every == 0 returns nil — the disabled sampler — so callers can pass a
// configuration value straight through.
func NewSampler(reg *Registry, every uint64) *Sampler {
	if every == 0 {
		return nil
	}
	return &Sampler{reg: reg, every: every, next: every}
}

// Tick observes that the simulation reached cycle (window-relative). When
// the cycle crosses the next interval boundary a snapshot is taken. Tick
// is called once per simulated cycle, so the boundary is normally hit
// exactly; a first call past the boundary (sampler attached late) samples
// immediately and re-anchors.
func (s *Sampler) Tick(cycle uint64) {
	if s == nil || cycle < s.next {
		return
	}
	s.take(cycle)
	s.next = cycle + s.every
}

// Flush records the final partial interval at the run's last cycle. It is
// idempotent for a given cycle: if the last sample already sits at
// finalCycle (the run ended exactly on a boundary) no duplicate is added.
// Flushing a run shorter than one interval yields that run's only sample.
func (s *Sampler) Flush(finalCycle uint64) {
	if s == nil {
		return
	}
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle >= finalCycle {
		return
	}
	s.take(finalCycle)
}

func (s *Sampler) take(cycle uint64) {
	sm := Sample{
		Cycle: cycle,
		//simlint:allow hotalloc -- one snapshot map per sampling interval (thousands of cycles), not per cycle; samples own their maps
		Counters: make(map[string]uint64),
	}
	s.reg.counterSnapshot(sm.Counters)
	if s.reg.hasKind(KindGauge) {
		//simlint:allow hotalloc -- one snapshot map per sampling interval (thousands of cycles), not per cycle; samples own their maps
		sm.Gauges = make(map[string]float64)
		s.reg.gaugeSnapshot(sm.Gauges)
	}
	//simlint:allow hotalloc -- the recorded series grows once per sampling interval and is the run's output, not per-cycle scratch
	s.samples = append(s.samples, sm)
}

// Samples returns the recorded series in time order.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// Every returns the sampling interval in cycles (0 for a disabled sampler).
func (s *Sampler) Every() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}

// Rates returns the per-cycle rate of the named counter over each interval
// of the series: out[i] covers (samples[i-1].Cycle, samples[i].Cycle], with
// the first interval anchored at cycle 0. Counters that are themselves
// cycle-valued (stall cycles) become duty-cycle fractions; event counters
// become events-per-cycle (multiply by 1000 for per-kilo-cycle). Missing
// names yield zeros.
func Rates(samples []Sample, name string) []float64 {
	out := make([]float64, len(samples))
	var prevV, prevC uint64
	for i, s := range samples {
		v := s.Counters[name]
		// Guard before subtracting: a non-monotone sample stream (stale
		// or merged input) must yield zero rate, not a wrapped uint64.
		if s.Cycle > prevC {
			out[i] = float64(v-prevV) / float64(s.Cycle-prevC)
		}
		prevV, prevC = v, s.Cycle
	}
	return out
}

// RatioDeltas returns the per-interval ratio Δnum/Δden of two counters
// (e.g. L1 misses over L1 accesses → per-interval miss rate). Intervals
// where the denominator did not advance yield 0.
func RatioDeltas(samples []Sample, num, den string) []float64 {
	out := make([]float64, len(samples))
	var prevN, prevD uint64
	for i, s := range samples {
		n, d := s.Counters[num], s.Counters[den]
		if dd := d - prevD; dd > 0 {
			out[i] = float64(n-prevN) / float64(dd)
		}
		prevN, prevD = n, d
	}
	return out
}
