// Package faultinject is a seeded, deterministic fault-injection
// framework for chaos-testing the campaign stack. An Injector carries a
// schedule of faults — which site fires, what kind of fault, and on which
// hit — derived entirely from a single uint64 seed through internal/xrand,
// so a fault schedule replays bit-identically across runs and under -race.
//
// Sites are the hardening boundaries named by the robustness plan: cache
// read/write, manifest append, worker execution, simulation step
// (commit) boundaries, and the distributed-fabric protocol (message
// delivery, lease expiry, heartbeat loss, stale double-completion).
// Each layer consults its injector with Check (or, for
// the simulator, the precomputed StallCycle) and applies the returned fault
// kind itself; the injector never touches I/O or simulator state directly.
//
// Injection is disabled by default: every method is safe on a nil
// *Injector and reports "no fault", so production call sites pay one nil
// check and nothing else.
package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/xrand"
)

// Site identifies an injection point in the campaign stack.
type Site uint8

const (
	// SiteCacheRead fires inside Cache.Get: a read error (→ miss) or a
	// corrupted payload (→ checksum mismatch → miss).
	SiteCacheRead Site = iota
	// SiteCacheWrite fires inside Cache.Put: a write error, or corrupt /
	// truncated bytes persisted in place of the entry.
	SiteCacheWrite
	// SiteManifestAppend fires inside Manifest.Append: a lost append or a
	// torn (half-written, newline-less) journal line.
	SiteManifestAppend
	// SiteWorkerExec fires inside the engine's per-attempt wrapper: a
	// transient error or a worker panic.
	SiteWorkerExec
	// SiteSimStep seeds a simulator livelock: commit stalls permanently
	// from a scheduled cycle, exercising the forward-progress watchdog.
	SiteSimStep
	// SiteFabricMsg fires in the fabric transport, once per message
	// exchange: a lost request (error), a delivered request whose
	// response is lost (drop), a request delivered twice (duplicate), a
	// stale earlier request re-delivered after this one (reorder), or a
	// payload corrupted in transit (corrupt).
	SiteFabricMsg
	// SiteLeaseExpiry fires in the coordinator's grant path: the granted
	// lease's TTL collapses to zero, so the very next clock tick reclaims
	// it — the "worker went silent immediately" schedule.
	SiteLeaseExpiry
	// SiteHeartbeat fires in the worker's renew path: the heartbeat is
	// silently dropped (never sent), so the lease ages toward expiry while
	// the worker believes it is covered.
	SiteHeartbeat
	// SiteStaleComplete fires in the worker's completion path: the
	// completion message is sent twice, exercising the coordinator's
	// double-completion idempotency even without a lease expiry.
	SiteStaleComplete
	numSites
)

// String names the site for event logs and test failures.
func (s Site) String() string {
	switch s {
	case SiteCacheRead:
		return "cache-read"
	case SiteCacheWrite:
		return "cache-write"
	case SiteManifestAppend:
		return "manifest-append"
	case SiteWorkerExec:
		return "worker-exec"
	case SiteSimStep:
		return "sim-step"
	case SiteFabricMsg:
		return "fabric-msg"
	case SiteLeaseExpiry:
		return "lease-expiry"
	case SiteHeartbeat:
		return "heartbeat"
	case SiteStaleComplete:
		return "stale-complete"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Kind is the fault a site applies when its schedule fires.
type Kind uint8

const (
	// KindNone means no fault at this hit.
	KindNone Kind = iota
	// KindError makes the operation fail with ErrInjected.
	KindError
	// KindCorrupt flips bytes in the payload (see Mutate).
	KindCorrupt
	// KindTruncate cuts the payload short mid-write (see Mutate).
	KindTruncate
	// KindPanic makes the worker panic.
	KindPanic
	// KindStall freezes simulator commit from a scheduled cycle on.
	KindStall
	// KindDrop delivers a fabric message but loses its response, so the
	// sender retries an operation the receiver already applied — the
	// duplicate-delivery schedule the protocol must be idempotent under.
	KindDrop
	// KindDuplicate delivers a fabric message twice back to back.
	KindDuplicate
	// KindReorder re-delivers the sender's previous message after the
	// current one: a delayed duplicate arriving out of order.
	KindReorder
)

// String names the kind for event logs and test failures.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindDrop:
		return "drop"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the sentinel wrapped by every KindError fault, so tests
// and operators can tell injected failures from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Event records one fault that actually fired.
type Event struct {
	Site Site
	Kind Kind
	Hit  uint64 // 1-based hit count at the site when the fault fired
}

// String renders the event for logs.
func (e Event) String() string { return fmt.Sprintf("%s/%s@%d", e.Site, e.Kind, e.Hit) }

// fault is one scheduled fault: fire kind on the fireAt-th hit (1-based)
// of its site. For SiteSimStep, fireAt is the stall cycle instead.
type fault struct {
	kind   Kind
	fireAt uint64
}

// Injector holds a fault schedule and the hit counters that drive it.
// All methods are safe for concurrent use and safe on a nil receiver
// (nil = injection disabled).
type Injector struct {
	seed uint64
	root *Injector // event sink for derived injectors; nil = self

	mu       sync.Mutex
	plans    [numSites][]fault
	hits     [numSites]uint64
	events   []Event
	observer func(Event)
}

// SetObserver installs a callback invoked (outside the injector lock)
// for every fault that fires anywhere in this injector's Child tree —
// the campaign tracer uses it to emit fault spans into the same timeline
// as the engine stages. Call before the run starts; nil-safe.
func (in *Injector) SetObserver(fn func(Event)) {
	if in == nil {
		return
	}
	s := in.sink()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// sink returns the injector holding the event log: the root of a Child
// tree, so Events on the parent sees faults fired by every child.
func (in *Injector) sink() *Injector {
	if in.root != nil {
		return in.root
	}
	return in
}

// record appends a fired fault to the root event log and notifies the
// observer, if any (outside the lock: observers may take their own).
func (in *Injector) record(e Event) {
	s := in.sink()
	s.mu.Lock()
	s.events = append(s.events, e)
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		fn(e)
	}
}

// siteKinds lists the fault kinds each site can express; random schedules
// draw from these.
var siteKinds = [numSites][]Kind{
	SiteCacheRead:      {KindError, KindCorrupt},
	SiteCacheWrite:     {KindError, KindCorrupt, KindTruncate},
	SiteManifestAppend: {KindError, KindTruncate},
	SiteWorkerExec:     {KindError, KindPanic},
	SiteSimStep:        {KindStall},
	SiteFabricMsg:      {KindError, KindDrop, KindDuplicate, KindReorder, KindCorrupt},
	SiteLeaseExpiry:    {KindError},
	SiteHeartbeat:      {KindDrop},
	SiteStaleComplete:  {KindDuplicate},
}

// New derives a random fault schedule from seed: each site independently
// gets a fault with probability ~1/2, with a site-appropriate kind and an
// early fire point, so a sweep over seeds covers single faults, fault
// combinations, and the fault-free case.
func New(seed uint64) *Injector {
	in := &Injector{seed: seed}
	for s := Site(0); s < numSites; s++ {
		r := xrand.New(xrand.Hash64(seed ^ (uint64(s)+1)*0x9e3779b97f4a7c15))
		if !r.Bool(0.5) {
			continue
		}
		kinds := siteKinds[s]
		k := kinds[r.Intn(len(kinds))]
		fireAt := 1 + r.Uint64n(3) // sites see only a handful of hits per small campaign
		if s == SiteSimStep {
			fireAt = 200 + r.Uint64n(2500) // stall cycle, comfortably before any MaxCycles bound
		}
		if s == SiteFabricMsg {
			fireAt = 1 + r.Uint64n(20) // every protocol exchange hits this site; spread across the run
		}
		in.plans[s] = append(in.plans[s], fault{kind: k, fireAt: fireAt})
	}
	return in
}

// Plan returns an empty, hand-buildable schedule (see Schedule) whose
// derived streams (Child, Mutate) are seeded from label.
func Plan(label string) *Injector {
	return &Injector{seed: xrand.Hash64(hashString(label))}
}

// Schedule adds one fault: kind fires on the fireAt-th hit (1-based) of
// site — except SiteSimStep, where fireAt is the commit-stall cycle.
// It returns the injector for chaining.
func (in *Injector) Schedule(site Site, kind Kind, fireAt uint64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[site] = append(in.plans[site], fault{kind: kind, fireAt: fireAt})
	return in
}

// Check counts one hit at site and returns the fault kind scheduled for
// it, KindNone when the schedule is silent. Safe on a nil injector.
func (in *Injector) Check(site Site) Kind {
	if in == nil {
		return KindNone
	}
	in.mu.Lock()
	in.hits[site]++
	hit := in.hits[site]
	kind := KindNone
	for _, f := range in.plans[site] {
		if f.fireAt == hit {
			kind = f.kind
			break
		}
	}
	in.mu.Unlock()
	if kind != KindNone {
		in.record(Event{Site: site, Kind: kind, Hit: hit})
	}
	return kind
}

// StallCycle returns the commit-stall cycle of the SiteSimStep plan, if
// any. Exposing the stall as a precomputed cycle keeps the simulator's
// per-cycle loop free of injector locking: the hot path costs nothing.
// Safe on a nil injector.
func (in *Injector) StallCycle() (uint64, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	var cycle, hit uint64
	found := false
	for _, f := range in.plans[SiteSimStep] {
		if f.kind == KindStall {
			in.hits[SiteSimStep]++
			cycle, hit, found = f.fireAt, in.hits[SiteSimStep], true
			break
		}
	}
	in.mu.Unlock()
	if !found {
		return 0, false
	}
	in.record(Event{Site: SiteSimStep, Kind: KindStall, Hit: hit})
	return cycle, true
}

// Child derives a sub-injector with the same schedule shape but counters
// of its own, seeded by (parent seed, label). The campaign engine hands
// each job a child keyed by the job's cache key, so which worker runs a
// job never changes what faults it sees. Faults fired by a child are
// logged on the root injector's event log (see Events). Safe on a nil
// injector (child of nil is nil: still disabled).
func (in *Injector) Child(label string) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	child := &Injector{seed: xrand.Hash64(in.seed ^ hashString(label)), root: in.sink()}
	child.plans = in.plans
	return child
}

// Mutate applies a payload fault deterministically: KindCorrupt flips one
// seed-chosen byte, KindTruncate keeps roughly the first half (always at
// least one byte short). Other kinds return data unchanged. The input
// slice is never modified.
func (in *Injector) Mutate(kind Kind, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	switch kind {
	case KindCorrupt:
		out := append([]byte(nil), data...)
		var seed uint64
		if in != nil {
			seed = in.seed
		}
		r := xrand.New(xrand.Hash64(seed ^ uint64(len(data))))
		out[r.Intn(len(out))] ^= byte(1 + r.Intn(255))
		return out
	case KindTruncate:
		return append([]byte(nil), data[:len(data)/2]...)
	default:
		// KindNone, KindError, KindPanic, KindStall and the fabric
		// delivery kinds (KindDrop, KindDuplicate, KindReorder) carry no
		// payload mutation: the data passes through untouched.
		return data
	}
}

// Events returns a copy of the faults that fired so far across the whole
// Child tree, in firing order. Safe on a nil injector.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	s := in.sink()
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// hashString is FNV-1a 64, used to fold string labels into xrand seeds.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
