// Package specfuzz is an automated countermeasure-fuzzing harness for
// speculative-leak discovery, in the spirit of design-time fuzzers like
// AMuLeT: it generates randomized Spectre-style gadget programs, runs each
// one as a differential pair (secret=A vs secret=B) under every protection
// policy, and flags any run where a secret-dependent timing or cache-state
// difference survives the defense. The two programs of a pair are
// byte-identical except for the planted secret word, so under the observer
// model any microarchitectural difference between them is, by construction,
// a leak of the secret.
//
// Gadgets are drawn from a four-dimensional space — transient-window shape
// (how the mispredicted branch resolves), secret-dependent access pattern
// (how the transient code encodes the secret into an address), flush/evict/
// fence sequencing around the attack, and receiver placement (Flush+Reload
// on a probe array vs Prime+Probe on an L1 set). Every point in the space
// is a small deterministic program for the simulated core; fuzz cells run
// as campaign cells, so they are keyed, cached, and resumable like any
// other experiment in this repository.
package specfuzz

import (
	"encoding/json"
	"fmt"

	"repro/internal/arch"
	"repro/internal/xrand"
)

// WindowKind selects the transient-window shape: how the gadget's
// mispredicted bounds check is built and how slowly it resolves.
type WindowKind int

const (
	// WindowBoundsCheck is the classic Spectre-V1 window: a single
	// bounds-check branch whose bounds value is (optionally) flushed so
	// the branch resolves at memory latency.
	WindowBoundsCheck WindowKind = iota
	// WindowPointerChase loads the bounds through a pointer indirection;
	// with both lines flushed, two dependent misses stack and the window
	// is roughly twice as long.
	WindowPointerChase
	// WindowDoubleBranch guards the access with two stacked bounds
	// checks; both must mispredict for the transient path to run.
	WindowDoubleBranch

	numWindowKinds
)

var windowNames = [numWindowKinds]string{
	WindowBoundsCheck:  "bounds-check",
	WindowPointerChase: "pointer-chase",
	WindowDoubleBranch: "double-branch",
}

func (k WindowKind) String() string {
	if k >= 0 && k < numWindowKinds {
		return windowNames[k]
	}
	return fmt.Sprintf("window(%d)", int(k))
}

// PatternKind selects how the transient code turns the secret into a
// receiver address.
type PatternKind int

const (
	// PatternIndex is the classic full-value transmission:
	// recv[secret*stride].
	PatternIndex PatternKind = iota
	// PatternTwoLevel adds a second table indirection,
	// recv[table[secret]*stride] — the table access itself is a second,
	// coarser secret-dependent line.
	PatternTwoLevel
	// PatternBit transmits a single secret bit:
	// recv[((secret>>Bit)&1)*stride].
	PatternBit

	numPatternKinds
)

var patternNames = [numPatternKinds]string{
	PatternIndex:    "index",
	PatternTwoLevel: "two-level",
	PatternBit:      "bit",
}

func (k PatternKind) String() string {
	if k >= 0 && k < numPatternKinds {
		return patternNames[k]
	}
	return fmt.Sprintf("pattern(%d)", int(k))
}

// ReceiverKind selects where the attacker looks for the transmission.
type ReceiverKind int

const (
	// RecvFlushReload flushes the receiver array before the attack and
	// times a reload of every slot afterwards: the installed slot is fast.
	RecvFlushReload ReceiverKind = iota
	// RecvPrimeProbe primes the L1 set that SecretA's receiver slot maps
	// to and times the primed lines afterwards: a slow primed line means
	// the transient install evicted it (the Section 2.4.1 observation
	// that defeats naive invalidation without restore).
	RecvPrimeProbe

	numReceiverKinds
)

var receiverNames = [numReceiverKinds]string{
	RecvFlushReload: "flush-reload",
	RecvPrimeProbe:  "prime-probe",
}

func (k ReceiverKind) String() string {
	if k >= 0 && k < numReceiverKinds {
		return receiverNames[k]
	}
	return fmt.Sprintf("receiver(%d)", int(k))
}

// enumJSON marshals the three kind enums by name so corpus files and cache
// keys stay readable and stable if constants are ever reordered.
func enumJSON(name string) ([]byte, error) { return json.Marshal(name) }

func enumFromJSON(data []byte, names []string, what string) (int, error) {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, fmt.Errorf("specfuzz: %s: %w", what, err)
	}
	for k, n := range names {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("specfuzz: unknown %s %q", what, s)
}

// MarshalJSON renders the kind by name.
func (k WindowKind) MarshalJSON() ([]byte, error) { return enumJSON(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *WindowKind) UnmarshalJSON(data []byte) error {
	v, err := enumFromJSON(data, windowNames[:], "window kind")
	if err == nil {
		*k = WindowKind(v)
	}
	return err
}

// MarshalJSON renders the kind by name.
func (k PatternKind) MarshalJSON() ([]byte, error) { return enumJSON(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *PatternKind) UnmarshalJSON(data []byte) error {
	v, err := enumFromJSON(data, patternNames[:], "pattern kind")
	if err == nil {
		*k = PatternKind(v)
	}
	return err
}

// MarshalJSON renders the kind by name.
func (k ReceiverKind) MarshalJSON() ([]byte, error) { return enumJSON(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *ReceiverKind) UnmarshalJSON(data []byte) error {
	v, err := enumFromJSON(data, receiverNames[:], "receiver kind")
	if err == nil {
		*k = ReceiverKind(v)
	}
	return err
}

// GadgetSpec is one point in the gadget space: everything needed to
// assemble the differential pair of programs deterministically. The JSON
// form is the corpus format and part of the campaign cache key, so field
// semantics must stay stable.
type GadgetSpec struct {
	// ID names the gadget within its generation run ("g0042").
	ID string `json:"id"`
	// Seed drives spec-local randomness (noise-block addresses).
	Seed uint64 `json:"seed"`

	Window   WindowKind   `json:"window"`
	Pattern  PatternKind  `json:"pattern"`
	Receiver ReceiverKind `json:"receiver"`

	// Entries is the receiver-slot count (power of two, 8..64); secrets
	// are drawn from [0, Entries).
	Entries int `json:"entries"`
	// Stride is the byte distance between receiver slots (power of two
	// ≥ 64, so distinct slots are distinct lines).
	Stride int64 `json:"stride"`
	// Bit is the transmitted bit for PatternBit (0 otherwise).
	Bit int `json:"bit,omitempty"`

	// TrainRounds is how many in-bounds victim calls precede the attack.
	TrainRounds int `json:"train_rounds"`
	// FlushBounds flushes the bounds line(s) before the attack call so
	// the mispredicted check resolves at memory latency.
	FlushBounds bool `json:"flush_bounds"`
	// FenceBeforeAttack serializes between the flush and the attack.
	FenceBeforeAttack bool `json:"fence_before_attack"`
	// DelayAfterAttack loads a cold line after the attack so a
	// squash-surviving in-flight fill has time to land before the probe.
	DelayAfterAttack bool `json:"delay_after_attack"`
	// SecretResident pre-loads the secret's line (victim data in active
	// use); when false the transient secret read itself misses, and the
	// whole transmission rides on fills that are still in flight at
	// squash time.
	SecretResident bool `json:"secret_resident"`
	// NoiseBlocks interleaves that many workload-shaped hash/load blocks
	// before the train phase.
	NoiseBlocks int `json:"noise_blocks"`

	// SecretA and SecretB are the two planted secrets of the
	// differential pair, both in [0, Entries), always distinct.
	SecretA int `json:"secret_a"`
	SecretB int `json:"secret_b"`
}

// String is the compact one-line form used in logs and reports.
func (s GadgetSpec) String() string {
	return fmt.Sprintf("%s[%s/%s/%s e=%d s=%d train=%d flush=%v fence=%v delay=%v res=%v noise=%d A=%d B=%d]",
		s.ID, s.Window, s.Pattern, s.Receiver, s.Entries, s.Stride, s.TrainRounds,
		s.FlushBounds, s.FenceBeforeAttack, s.DelayAfterAttack, s.SecretResident, s.NoiseBlocks,
		s.SecretA, s.SecretB)
}

// Validate checks the structural invariants the program builder relies on.
func (s GadgetSpec) Validate() error {
	switch {
	case s.Window < 0 || s.Window >= numWindowKinds:
		return fmt.Errorf("specfuzz: %s: invalid window kind %d", s.ID, int(s.Window))
	case s.Pattern < 0 || s.Pattern >= numPatternKinds:
		return fmt.Errorf("specfuzz: %s: invalid pattern kind %d", s.ID, int(s.Pattern))
	case s.Receiver < 0 || s.Receiver >= numReceiverKinds:
		return fmt.Errorf("specfuzz: %s: invalid receiver kind %d", s.ID, int(s.Receiver))
	case s.Entries < 2 || s.Entries > maxEntries || s.Entries&(s.Entries-1) != 0:
		return fmt.Errorf("specfuzz: %s: entries %d not a power of two in [2,%d]", s.ID, s.Entries, maxEntries)
	case s.Stride < arch.LineBytes || s.Stride&(s.Stride-1) != 0:
		return fmt.Errorf("specfuzz: %s: stride %d not a power of two ≥ %d", s.ID, s.Stride, arch.LineBytes)
	case int64(s.Entries)*s.Stride > recvSpan:
		return fmt.Errorf("specfuzz: %s: receiver %d×%d overflows its %d-byte region", s.ID, s.Entries, s.Stride, recvSpan)
	case s.Bit < 0 || (1<<s.Bit) >= s.Entries:
		return fmt.Errorf("specfuzz: %s: bit %d out of range for %d entries", s.ID, s.Bit, s.Entries)
	case s.TrainRounds < 1 || s.TrainRounds >= boundsEntries:
		return fmt.Errorf("specfuzz: %s: train rounds %d outside [1,%d]", s.ID, s.TrainRounds, boundsEntries-1)
	case s.NoiseBlocks < 0 || s.NoiseBlocks > 8:
		return fmt.Errorf("specfuzz: %s: noise blocks %d outside [0,8]", s.ID, s.NoiseBlocks)
	case s.SecretA < 0 || s.SecretA >= s.Entries || s.SecretB < 0 || s.SecretB >= s.Entries:
		return fmt.Errorf("specfuzz: %s: secrets %d/%d outside [0,%d)", s.ID, s.SecretA, s.SecretB, s.Entries)
	case s.SecretA == s.SecretB:
		return fmt.Errorf("specfuzz: %s: differential pair needs distinct secrets", s.ID)
	}
	return nil
}

// Generate derives n gadget specs from seed. The sequence is a pure
// function of (seed, n-prefix): Generate(s, 10) is a prefix of
// Generate(s, 20), and two calls with the same arguments are deeply equal
// — the determinism the campaign cache and the golden tests rely on.
func Generate(seed uint64, n int) []GadgetSpec {
	rng := xrand.New(seed)
	specs := make([]GadgetSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, randomSpec(rng, i))
	}
	return specs
}

var (
	entryChoices  = []int{8, 16, 32, 64}
	strideChoices = []int64{64, 128, 512}
)

// randomSpec draws one spec. Axis weights favor configurations that open a
// real transient window (flushed bounds, post-attack delay) so a modest
// budget still produces plenty of effective gadgets, while keeping enough
// probability on the "broken gadget" corners (unflushed bounds, missing
// delay) that the oracle's negative space is exercised too.
func randomSpec(rng *xrand.Rand, idx int) GadgetSpec {
	s := GadgetSpec{
		ID:                fmt.Sprintf("g%04d", idx),
		Seed:              rng.Uint64(),
		Window:            WindowKind(rng.Uint64n(uint64(numWindowKinds))),
		Pattern:           PatternKind(rng.Uint64n(uint64(numPatternKinds))),
		Receiver:          ReceiverKind(rng.Uint64n(uint64(numReceiverKinds))),
		Entries:           entryChoices[rng.Uint64n(uint64(len(entryChoices)))],
		Stride:            strideChoices[rng.Uint64n(uint64(len(strideChoices)))],
		TrainRounds:       3 + int(rng.Uint64n(8)),
		FlushBounds:       rng.Uint64n(8) != 0,
		FenceBeforeAttack: rng.Uint64n(8) != 0,
		DelayAfterAttack:  rng.Uint64n(8) != 0,
		SecretResident:    rng.Uint64n(4) != 0,
		NoiseBlocks:       int(rng.Uint64n(4)),
	}
	if s.Pattern == PatternBit {
		// Pick a bit the entry count can actually express.
		maxBit := 0
		for (1 << (maxBit + 1)) < s.Entries {
			maxBit++
		}
		s.Bit = int(rng.Uint64n(uint64(maxBit + 1)))
	}
	// Prefer a secret whose receiver slot the training phase does not
	// warm: trained slots are fast in both runs of the pair, so a
	// trained-range secret transmits invisibly through the Flush+Reload
	// receiver. A few rejection draws suffice; if the spec's corner of
	// the space has no untrained slot, any secret is accepted (the
	// gadget is then likely ineffective — explored negative space).
	s.SecretA = int(rng.Uint64n(uint64(s.Entries)))
	for tries := 0; tries < 16 && trainedSlot(s, encSlot(s, s.SecretA)); tries++ {
		s.SecretA = int(rng.Uint64n(uint64(s.Entries)))
	}
	s.SecretB = drawSecretB(rng, s)
	return s
}

// trainedSlot reports whether the training phase's in-bounds calls
// (x = 1..TrainRounds) warm this receiver slot on the correct path.
func trainedSlot(s GadgetSpec, slot int) bool {
	for x := 1; x <= s.TrainRounds; x++ {
		if encSlot(s, x) == slot {
			return true
		}
	}
	return false
}

// drawSecretB picks SecretB so the pair is actually distinguishable by the
// spec's receiver: distinct from SecretA, encoding to a distinct receiver
// slot, and (for Prime+Probe) a slot in a different L1 set than the primed
// one — otherwise both runs disturb the monitored set identically and the
// gadget cannot leak even unprotected. The rejection loop is bounded by a
// deterministic linear scan so generation always terminates.
func drawSecretB(rng *xrand.Rand, s GadgetSpec) int {
	ok := func(b int) bool {
		if b == s.SecretA || encSlot(s, b) == encSlot(s, s.SecretA) {
			return false
		}
		if s.Receiver == RecvPrimeProbe {
			return recvSet(s, encSlot(s, b)) != recvSet(s, encSlot(s, s.SecretA))
		}
		return true
	}
	for tries := 0; tries < 64; tries++ {
		b := int(rng.Uint64n(uint64(s.Entries)))
		if ok(b) && (tries >= 16 || !trainedSlot(s, encSlot(s, b))) {
			return b
		}
	}
	for b := 0; b < s.Entries; b++ {
		if ok(b) {
			return b
		}
	}
	// Degenerate spec (e.g. every slot aliases): fall back to any value
	// distinct from A; Validate accepts it and the oracle simply reports
	// "no leak" for the pair.
	return (s.SecretA + 1) % s.Entries
}

// encSlot is the receiver slot index the transient code accesses for a
// given secret value under the spec's pattern. The two-level table is the
// identity map, so it forwards the value unchanged (its own table access
// adds a second, coarser channel on top).
func encSlot(s GadgetSpec, secret int) int {
	if s.Pattern == PatternBit {
		return (secret >> s.Bit) & 1
	}
	return secret
}

// recvSet is the L1 set index of a receiver slot under the default
// mod-indexed L1 (the paper's 64KB/8-way geometry; the L1 is never
// randomized by any policy in this repository).
func recvSet(s GadgetSpec, slot int) int {
	a := addrRecv + arch.Addr(int64(slot)*s.Stride)
	return int(uint64(a.Line()) % uint64(defaultL1Sets))
}
