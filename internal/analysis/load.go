package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked Go module: the unit simlint
// analyzes. All packages share one token.FileSet, so a finding in any file
// (including a finding one analyzer reports into another package's source,
// as the cache-key analyzer does) resolves to a stable file:line:col.
type Module struct {
	Root string // absolute module root (directory containing go.mod)
	Path string // module path from the go.mod module directive
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	byPath map[string]*Package
}

// Package is one loaded package of the module.
type Package struct {
	PkgPath string // full import path ("repro/internal/cache")
	Dir     string // absolute directory
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	mod *Module
}

// Rel returns the package's path relative to the module root ("" for the
// root package, "internal/cache", "cmd/simlint", ...). Analyzers scope
// themselves with it, so they work identically on the real module and on
// the testdata mini-modules used by the golden tests.
func (p *Package) Rel() string {
	if p.PkgPath == p.mod.Path {
		return ""
	}
	return strings.TrimPrefix(p.PkgPath, p.mod.Path+"/")
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks every package under the module rooted at (or
// above) dir, using only the standard library: go/parser for syntax, and
// go/types with a recursive source importer for semantics. Module-internal
// imports are resolved by mapping import paths onto the module tree;
// everything else (the standard library) goes through the compiler's source
// importer. Test files are skipped — simlint checks shipped simulator code,
// and the testdata golden packages carry `// want` comments that must not
// be subject to linting themselves.
func Load(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Root:   root,
		Path:   mpath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		pkg, err := mod.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
			mod.byPath[pkg.PkgPath] = pkg
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].PkgPath < mod.Pkgs[j].PkgPath })

	imp := &moduleImporter{
		mod:      mod,
		std:      importer.ForCompiler(mod.Fset, "source", nil),
		inflight: make(map[string]bool),
	}
	for _, pkg := range mod.Pkgs {
		if err := imp.check(pkg); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// packageDirs returns every directory under root that contains at least one
// non-test .go file, sorted. testdata trees, hidden directories, and vendor
// are skipped, mirroring the go tool's package enumeration.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test files of one directory. Returns nil if the
// directory holds no buildable files.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := m.Path
	if rel != "." {
		pkgPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, mod: m}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// moduleImporter resolves imports during type checking: module-internal
// paths recurse into the module's own parsed packages (with cycle
// detection); all other paths — the standard library — are delegated to the
// compiler's source importer.
type moduleImporter struct {
	mod      *Module
	std      types.Importer
	inflight map[string]bool
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if path == imp.mod.Path || strings.HasPrefix(path, imp.mod.Path+"/") {
		pkg, ok := imp.mod.byPath[path]
		if !ok {
			return nil, fmt.Errorf("analysis: import %q not found in module %s", path, imp.mod.Path)
		}
		if err := imp.check(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return imp.std.Import(path)
}

// check type-checks pkg (idempotent; recursion through Import handles
// dependencies first).
func (imp *moduleImporter) check(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	if imp.inflight[pkg.PkgPath] {
		return fmt.Errorf("analysis: import cycle through %s", pkg.PkgPath)
	}
	imp.inflight[pkg.PkgPath] = true
	defer delete(imp.inflight, pkg.PkgPath)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.PkgPath, imp.mod.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
